//! Per-node playback state machine.
//!
//! A node starts playing a stream once `Q` consecutive segments from its join
//! point have been gathered (§3).  Playback then consumes `p` segments per
//! second in id order, stalling (not skipping) when the next segment is
//! missing.  Playback of a *new* source is additionally gated: it may not
//! start before the old stream has been played to its end **and** the first
//! `Qs` segments of the new stream are all present — the caller expresses the
//! gate through the `limit` argument of [`PlaybackState::advance`].

use crate::buffer::FifoBuffer;
use crate::segment::SegmentId;
use serde::{Deserialize, Serialize};

/// Coarse playback phase, mostly useful for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlaybackPhase {
    /// Waiting for the initial startup condition (`Q` consecutive segments).
    Startup,
    /// Actively consuming segments.
    Playing,
}

/// Statistics and position of one node's playback.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaybackState {
    join_point: SegmentId,
    next_play: SegmentId,
    started: bool,
    /// Total segments played.
    played: u64,
    /// Play opportunities lost because the next segment was missing or gated.
    stalls: u64,
}

impl PlaybackState {
    /// Creates a playback state that will start from `join_point`.
    pub fn new(join_point: SegmentId) -> Self {
        PlaybackState {
            join_point,
            next_play: join_point,
            started: false,
            played: 0,
            stalls: 0,
        }
    }

    /// The segment the node will play next (equals the paper's `id_play` once
    /// playback has started).
    pub fn next_play(&self) -> SegmentId {
        self.next_play
    }

    /// The node's join point (first segment it intends to play).
    pub fn join_point(&self) -> SegmentId {
        self.join_point
    }

    /// Whether playback has started.
    pub fn has_started(&self) -> bool {
        self.started
    }

    /// The current playback phase.
    pub fn phase(&self) -> PlaybackPhase {
        if self.started {
            PlaybackPhase::Playing
        } else {
            PlaybackPhase::Startup
        }
    }

    /// Total segments played so far.
    pub fn played(&self) -> u64 {
        self.played
    }

    /// Play opportunities lost to missing or gated segments.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Moves the join point (used for churn joiners that "follow their
    /// neighbors' current steps").  Only allowed before playback starts.
    pub fn rejoin_at(&mut self, join_point: SegmentId) {
        if !self.started {
            self.join_point = join_point;
            self.next_play = join_point;
        }
    }

    /// Attempts the initial startup: playback starts once `startup_q`
    /// consecutive segments from the join point are present.  Returns `true`
    /// if playback started (now or earlier).
    pub fn try_start(&mut self, buffer: &FifoBuffer, startup_q: usize) -> bool {
        if !self.started && buffer.contiguous_run_from(self.join_point) >= startup_q {
            self.started = true;
        }
        self.started
    }

    /// Plays up to `budget` segments from the buffer in id order.
    ///
    /// `limit` is an exclusive upper bound: segments with `id >= limit` are
    /// not played even if present (the caller uses this to gate a new source
    /// whose startup condition is not yet satisfied).  Returns the number of
    /// segments actually played; the shortfall is recorded as stalls.
    pub fn advance(&mut self, buffer: &FifoBuffer, budget: u64, limit: Option<SegmentId>) -> u64 {
        if !self.started {
            return 0;
        }
        let mut played_now = 0;
        while played_now < budget {
            if let Some(limit) = limit {
                if self.next_play >= limit {
                    break;
                }
            }
            if !buffer.contains(self.next_play) {
                break;
            }
            self.next_play = self.next_play.next();
            self.played += 1;
            played_now += 1;
        }
        self.stalls += budget - played_now;
        played_now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer_with(ids: &[u64]) -> FifoBuffer {
        let mut b = FifoBuffer::new(600);
        for &i in ids {
            b.insert(SegmentId(i));
        }
        b
    }

    #[test]
    fn startup_requires_q_consecutive_segments() {
        let mut p = PlaybackState::new(SegmentId(0));
        assert_eq!(p.phase(), PlaybackPhase::Startup);

        // 9 consecutive: not enough for Q = 10.
        let b = buffer_with(&(0..9).collect::<Vec<_>>());
        assert!(!p.try_start(&b, 10));

        // A gap at 5 breaks the run even with many segments.
        let b = buffer_with(&[0, 1, 2, 3, 4, 6, 7, 8, 9, 10, 11, 12]);
        assert!(!p.try_start(&b, 10));

        let b = buffer_with(&(0..10).collect::<Vec<_>>());
        assert!(p.try_start(&b, 10));
        assert_eq!(p.phase(), PlaybackPhase::Playing);
        // Idempotent.
        assert!(p.try_start(&FifoBuffer::new(10), 10));
    }

    #[test]
    fn advance_plays_in_order_and_stalls_on_gaps() {
        let mut p = PlaybackState::new(SegmentId(0));
        let b = buffer_with(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12]);
        assert!(p.try_start(&b, 10));

        assert_eq!(p.advance(&b, 10, None), 10);
        assert_eq!(p.next_play(), SegmentId(10));
        assert_eq!(p.played(), 10);
        assert_eq!(p.stalls(), 0);

        // 10 is present, 11 missing: plays 1, stalls 9.
        assert_eq!(p.advance(&b, 10, None), 1);
        assert_eq!(p.next_play(), SegmentId(11));
        assert_eq!(p.stalls(), 9);

        // Entirely stalled.
        assert_eq!(p.advance(&b, 5, None), 0);
        assert_eq!(p.stalls(), 14);
    }

    #[test]
    fn advance_respects_limit_gate() {
        let mut p = PlaybackState::new(SegmentId(0));
        let b = buffer_with(&(0..30).collect::<Vec<_>>());
        assert!(p.try_start(&b, 10));

        // Old stream ends at 19; the new source (starting at 20) is gated.
        assert_eq!(p.advance(&b, 100, Some(SegmentId(20))), 20);
        assert_eq!(p.next_play(), SegmentId(20));

        // Gate lifted: playback continues.
        assert_eq!(p.advance(&b, 100, None), 10);
        assert_eq!(p.next_play(), SegmentId(30));
    }

    #[test]
    fn no_playback_before_start() {
        let mut p = PlaybackState::new(SegmentId(5));
        let b = buffer_with(&[5, 6, 7]);
        assert_eq!(p.advance(&b, 10, None), 0);
        assert_eq!(p.played(), 0);
        assert_eq!(p.stalls(), 0);
    }

    #[test]
    fn rejoin_moves_join_point_only_before_start() {
        let mut p = PlaybackState::new(SegmentId(0));
        p.rejoin_at(SegmentId(100));
        assert_eq!(p.join_point(), SegmentId(100));
        assert_eq!(p.next_play(), SegmentId(100));

        let b = buffer_with(&(100..110).collect::<Vec<_>>());
        assert!(p.try_start(&b, 10));
        p.rejoin_at(SegmentId(0));
        assert_eq!(p.join_point(), SegmentId(100), "rejoin ignored after start");
    }

    #[test]
    fn zero_budget_never_stalls() {
        let mut p = PlaybackState::new(SegmentId(0));
        let b = buffer_with(&(0..10).collect::<Vec<_>>());
        p.try_start(&b, 10);
        assert_eq!(p.advance(&b, 0, None), 0);
        assert_eq!(p.stalls(), 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        /// played + stalls always equals the total budget offered after start,
        /// and next_play never exceeds the limit.
        #[test]
        fn prop_budget_accounting(
            ids in proptest::collection::btree_set(0u64..100, 10..80),
            budgets in proptest::collection::vec(0u64..20, 1..10),
            limit in 0u64..120,
        ) {
            let ids: Vec<u64> = ids.into_iter().collect();
            let b = buffer_with(&ids);
            let mut p = PlaybackState::new(SegmentId(ids[0]));
            if !p.try_start(&b, 5) {
                return Ok(());
            }
            let mut offered = 0;
            for budget in budgets {
                offered += budget;
                p.advance(&b, budget, Some(SegmentId(limit)));
                proptest::prop_assert!(p.next_play() <= SegmentId(limit.max(ids[0])));
            }
            proptest::prop_assert_eq!(p.played() + p.stalls(), offered);
        }
    }
}
