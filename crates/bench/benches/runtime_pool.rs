//! Persistent pool vs per-period scoped spawn.
//!
//! Two questions, answered on whatever hardware runs this:
//!
//! * `dispatch/*` — what does *fanning out one period's worth of work* cost
//!   through (a) the persistent [`WorkerPool`] (park/unpark, zero spawns)
//!   versus (b) a fresh `std::thread::scope` spawn per call — the
//!   pre-refactor design of the parallel scheduling sweep?  The workload
//!   per chunk is a small fixed spin so the numbers isolate dispatch cost.
//! * `session/*` — end-to-end: one period of a 4-channel zapping
//!   [`SessionManager`] sharded over pools of 1 and 4 workers (identical
//!   reports either way; on a 1-vCPU container the sizes should tie).

use criterion::{criterion_group, criterion_main, Criterion};
use fss_core::FastSwitchScheduler;
use fss_runtime::{SessionConfig, SessionManager, WorkerPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const CHUNKS: usize = 8;
const SPIN: u64 = 2_000;

/// A small deterministic spin standing in for one chunk of scheduling work.
fn spin(sink: &AtomicU64, chunk: usize) {
    let mut acc = chunk as u64 + 1;
    for i in 0..SPIN {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    sink.fetch_xor(acc, Ordering::Relaxed);
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    let sink = AtomicU64::new(0);

    let pool = WorkerPool::with_available_parallelism();
    group.bench_function("persistent_pool", |b| {
        b.iter(|| pool.execute(CHUNKS, &|i: usize| spin(&sink, i)))
    });

    group.bench_function("scoped_spawn", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for i in 0..CHUNKS {
                    let sink = &sink;
                    scope.spawn(move || spin(sink, i));
                }
            })
        })
    });

    group.finish();
}

fn zapping_session(workers: usize) -> SessionManager {
    let config = SessionConfig::paper_default(4, 100);
    let mut manager = SessionManager::new(config, Arc::new(WorkerPool::new(workers)), || {
        Box::new(FastSwitchScheduler::new())
    });
    manager.warmup(40);
    manager
}

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session");
    group.sample_size(10);

    let mut manager = zapping_session(1);
    group.bench_function("zapping_period_4ch_pool1", |b| b.iter(|| manager.step()));

    let mut manager = zapping_session(4);
    group.bench_function("zapping_period_4ch_pool4", |b| b.iter(|| manager.step()));

    group.finish();
}

criterion_group!(benches, bench_dispatch, bench_session);
criterion_main!(benches);
