//! Persistent pool vs per-period scoped spawn.
//!
//! Two questions, answered on whatever hardware runs this:
//!
//! * `dispatch/*` — what does *fanning out one period's worth of work* cost
//!   through (a) the persistent [`WorkerPool`] (park/unpark, zero spawns)
//!   versus (b) a fresh `std::thread::scope` spawn per call — the
//!   pre-refactor design of the parallel scheduling sweep?  The workload
//!   per chunk is a small fixed spin so the numbers isolate dispatch cost.
//! * `session/*` — end-to-end: one period of a 4-channel zapping
//!   [`SessionManager`] sharded over pools of 1 and 4 workers (identical
//!   reports either way; on a 1-vCPU container the sizes should tie).
//! * `pipeline/*` — many-channel stepping, barrier versus pipelined mode:
//!   10 measured periods of an 8-channel Zipf-zapping session.  The
//!   pipelined lane pays one pool dispatch per *round* (potentially many
//!   periods) instead of one per period, and fast channels never wait for
//!   slow ones at a global barrier — reports are byte-identical either
//!   way, so the delta is pure wall-clock.

use criterion::{criterion_group, criterion_main, Criterion};
use fss_core::FastSwitchScheduler;
use fss_runtime::{SessionConfig, SessionManager, SteppingMode, WorkerPool, ZapWorkload};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const CHUNKS: usize = 8;
const SPIN: u64 = 2_000;

/// A small deterministic spin standing in for one chunk of scheduling work.
fn spin(sink: &AtomicU64, chunk: usize) {
    let mut acc = chunk as u64 + 1;
    for i in 0..SPIN {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    sink.fetch_xor(acc, Ordering::Relaxed);
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    let sink = AtomicU64::new(0);

    let pool = WorkerPool::with_available_parallelism();
    group.bench_function("persistent_pool", |b| {
        b.iter(|| pool.execute(CHUNKS, &|i: usize| spin(&sink, i)))
    });

    group.bench_function("scoped_spawn", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for i in 0..CHUNKS {
                    let sink = &sink;
                    scope.spawn(move || spin(sink, i));
                }
            })
        })
    });

    group.finish();
}

fn zapping_session(workers: usize) -> SessionManager {
    let config = SessionConfig::paper_default(4, 100);
    let mut manager = SessionManager::new(config, Arc::new(WorkerPool::new(workers)), || {
        Box::new(FastSwitchScheduler::new())
    });
    manager.warmup(40);
    manager
}

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session");
    group.sample_size(10);

    let mut manager = zapping_session(1);
    group.bench_function("zapping_period_4ch_pool1", |b| b.iter(|| manager.step()));

    let mut manager = zapping_session(4);
    group.bench_function("zapping_period_4ch_pool4", |b| b.iter(|| manager.step()));

    group.finish();
}

/// An 8-channel session with a sparse Zipf(1.0) zap workload, so channels
/// have real run-ahead room between their pairwise sync points.
fn many_channel_session(workers: usize, mode: SteppingMode) -> SessionManager {
    let config = SessionConfig {
        zap_fraction: 0.005,
        ..SessionConfig::paper_default(8, 50)
    };
    let mut manager = SessionManager::new(config, Arc::new(WorkerPool::new(workers)), || {
        Box::new(FastSwitchScheduler::new())
    });
    manager.set_workload(ZapWorkload::Zipf { alpha: 1.0 });
    manager.set_mode(mode);
    manager.warmup(40);
    manager
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    for workers in [1, 4] {
        let mut barrier = many_channel_session(workers, SteppingMode::Barrier);
        group.bench_function(format!("many_channel_barrier_pool{workers}"), |b| {
            b.iter(|| barrier.run_periods(10))
        });

        let mut pipelined = many_channel_session(workers, SteppingMode::pipelined());
        group.bench_function(format!("many_channel_pipelined_pool{workers}"), |b| {
            b.iter(|| pipelined.run_periods(10))
        });
    }

    group.finish();

    // The structural (noise-free) comparison: pool dispatches per measured
    // period.  Barrier stepping pays one dispatch per period; pipelined
    // stepping pays one per round, where a round covers up to `run_ahead`
    // periods of every channel not parked at a sync point.
    for (label, mode) in [
        ("barrier", SteppingMode::Barrier),
        ("pipelined", SteppingMode::pipelined()),
    ] {
        let mut manager = many_channel_session(1, mode);
        let before = manager.pool().dispatches();
        manager.run_periods(40);
        let dispatches = manager.pool().dispatches() - before;
        println!("note: pipeline/dispatches_per_40_periods_{label}: {dispatches}");
    }
}

criterion_group!(benches, bench_dispatch, bench_session, bench_pipeline);
criterion_main!(benches);
