//! Benchmarks of the switch-process model (Section 3).
//!
//! Confirms that the closed-form optimal split is essentially free compared
//! with a numeric minimisation of the same objective.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fss_core::SwitchModel;

fn bench_model(c: &mut Criterion) {
    let model = SwitchModel::new(100.0, 50.0, 10.0, 10.0, 15.0);

    let mut group = c.benchmark_group("model");
    group.bench_function("closed_form_split", |b| {
        b.iter(|| black_box(model).optimal_split())
    });
    group.bench_function("numeric_split_1k_steps", |b| {
        b.iter(|| black_box(model).numeric_best_split(1_000))
    });
    group.bench_function("startup_delay_eval", |b| {
        b.iter(|| black_box(model).startup_delay_secs(black_box(9.0), black_box(6.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
