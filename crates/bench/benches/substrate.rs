//! Benchmarks of the gossip substrate hot paths: FIFO buffer operations,
//! buffer-map encoding, and transfer resolution.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fss_gossip::{
    BufferMap, CapacityModel, FifoBuffer, RequestBatch, SegmentId, SegmentRequest, TransferResolver,
};

fn full_buffer() -> FifoBuffer {
    let mut buffer = FifoBuffer::new(600);
    for i in 0..600u64 {
        buffer.insert(SegmentId(1_000 + i));
    }
    buffer
}

fn bench_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer");

    group.bench_function("insert_with_eviction", |b| {
        let mut buffer = full_buffer();
        let mut next = 2_000u64;
        b.iter(|| {
            buffer.insert(SegmentId(next));
            next += 1;
        })
    });

    let buffer = full_buffer();
    let wanted: Vec<SegmentId> = (0..100).map(|i| SegmentId(1_000 + i * 6)).collect();
    group.bench_function("positions_of_100", |b| {
        b.iter(|| buffer.positions_of(black_box(&wanted)))
    });
    group.bench_function("missing_in_range_600", |b| {
        b.iter(|| buffer.missing_in_range(SegmentId(1_000), SegmentId(1_599)))
    });

    group.bench_function("buffermap_build_and_encode", |b| {
        b.iter(|| BufferMap::from_buffer(&buffer, 600).encode())
    });
    let encoded = BufferMap::from_buffer(&buffer, 600).encode();
    group.bench_function("buffermap_decode", |b| {
        b.iter(|| BufferMap::decode(encoded.clone()).unwrap())
    });
    group.finish();
}

fn bench_transfer(c: &mut Criterion) {
    // 200 requesters, 15 requests each, spread over 40 suppliers.
    let batches: Vec<RequestBatch> = (0..200u32)
        .map(|r| RequestBatch {
            requester: r,
            inbound_budget: 15,
            requests: (0..15u64)
                .map(|k| SegmentRequest {
                    segment: SegmentId(u64::from(r) * 20 + k),
                    supplier: (r + k as u32) % 40,
                })
                .collect(),
        })
        .collect();

    let mut group = c.benchmark_group("transfer");
    group.bench_function("resolve_shared_200x15", |b| {
        let mut resolver = TransferResolver::with_model(CapacityModel::Shared);
        b.iter(|| resolver.resolve_round(black_box(&batches), |_| 15, 3))
    });
    group.bench_function("resolve_per_link_200x15", |b| {
        let mut resolver = TransferResolver::with_model(CapacityModel::PerLink);
        b.iter(|| resolver.resolve_round(black_box(&batches), |_| 15, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_buffer, bench_transfer);
criterion_main!(benches);
