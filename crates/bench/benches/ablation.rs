//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * **Bandwidth model** — per-link (default) vs shared supplier outbound;
//!   the shared model reproduces the paper's bandwidth-starved regime.
//! * **Rarity definition** — the paper's buffer-position product (eq. 8) vs
//!   the traditional `1/n` rarity it argues against.
//! * **Supplier assignment** — the greedy heuristic of Algorithm 1 vs the
//!   exact exponential solver on micro instances.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fss_core::{greedy_assign, optimal_assign, rarity, traditional_rarity, AssignmentOrder};
use fss_experiments::{run_scenario, Algorithm, Environment, ScenarioConfig};
use fss_gossip::{
    CandidateSegment, SchedulingContext, SegmentId, SessionView, SourceId, SupplierInfo,
};

fn bench_bandwidth_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bandwidth_model");
    group.sample_size(10);

    group.bench_function("per_link_80_nodes", |b| {
        let config = ScenarioConfig::quick(80, Algorithm::Fast, Environment::Static);
        b.iter(|| run_scenario(&config))
    });
    group.bench_function("shared_80_nodes", |b| {
        let config = ScenarioConfig {
            shared_supplier_capacity: true,
            max_switch_periods: 120,
            ..ScenarioConfig::quick(80, Algorithm::Fast, Environment::Static)
        };
        b.iter(|| run_scenario(&config))
    });
    group.finish();
}

fn micro_context(n: u64, suppliers: u32) -> SchedulingContext {
    let candidates = (0..n)
        .map(|k| CandidateSegment {
            id: SegmentId(150 + k),
            suppliers: (0..suppliers)
                .map(|s| SupplierInfo {
                    peer: s + 1,
                    rate: 3.0 + s as f64,
                    buffer_position: 100 + k as usize,
                    buffer_capacity: 600,
                })
                .collect(),
        })
        .collect();
    SchedulingContext {
        tau_secs: 1.0,
        play_rate: 10.0,
        inbound_rate: 15.0,
        id_play: SegmentId(150),
        startup_q: 10,
        new_source_qs: 50,
        old_session: Some(SessionView {
            id: SourceId(0),
            first_segment: SegmentId(0),
            last_segment: Some(SegmentId(199)),
        }),
        new_session: Some(SessionView {
            id: SourceId(1),
            first_segment: SegmentId(200),
            last_segment: None,
        }),
        q1: n as usize,
        q2: 50,
        candidates,
    }
}

fn bench_assignment_gap(c: &mut Criterion) {
    let ctx = micro_context(8, 3);
    let mut group = c.benchmark_group("ablation_assignment");
    group.bench_function("greedy_8_candidates", |b| {
        b.iter(|| greedy_assign(black_box(&ctx), AssignmentOrder::ByPriority))
    });
    group.bench_function("exact_8_candidates", |b| {
        b.iter(|| optimal_assign(black_box(&ctx)))
    });
    group.finish();
}

fn bench_rarity_definitions(c: &mut Criterion) {
    let positions: Vec<(usize, usize)> = (0..5).map(|i| (100 + i * 90, 600)).collect();
    let mut group = c.benchmark_group("ablation_rarity");
    group.bench_function("paper_buffer_position_product", |b| {
        b.iter(|| rarity(black_box(&positions)))
    });
    group.bench_function("traditional_one_over_n", |b| {
        b.iter(|| traditional_rarity(black_box(5)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bandwidth_model,
    bench_assignment_gap,
    bench_rarity_definitions
);
criterion_main!(benches);
