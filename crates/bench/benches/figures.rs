//! One benchmark per paper figure, at reduced scale.
//!
//! Each benchmark runs the *same code path* that regenerates the figure
//! (`figures` binary / `fss_experiments::figures`), on a small overlay so the
//! whole suite stays in the minutes range.  Use
//! `cargo run --release -p fss-experiments --bin figures` for the full-size
//! tables recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use fss_experiments::figures::{sweeps, tracks};
use fss_experiments::{run_comparison, sweep_sizes, Algorithm, Environment, ScenarioConfig};

const TRACK_NODES: usize = 80;
const SWEEP_SIZES: [usize; 2] = [60, 100];

fn bench_ratio_tracks(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    // Figure 5: ratio tracks, static environment.
    group.bench_function("fig05_ratio_track_static", |b| {
        let config = ScenarioConfig::quick(TRACK_NODES, Algorithm::Fast, Environment::Static);
        b.iter(|| {
            let cmp = run_comparison(&config);
            tracks::ratio_track_table(Environment::Static, &cmp)
        })
    });

    // Figure 9: ratio tracks, dynamic environment.
    group.bench_function("fig09_ratio_track_dynamic", |b| {
        let config = ScenarioConfig::quick(TRACK_NODES, Algorithm::Fast, Environment::Dynamic);
        b.iter(|| {
            let cmp = run_comparison(&config);
            tracks::ratio_track_table(Environment::Dynamic, &cmp)
        })
    });
    group.finish();
}

fn bench_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    // Figures 6, 7 and 8 share one static size sweep.
    group.bench_function("fig06_07_08_static_sweep", |b| {
        let base = ScenarioConfig::quick(SWEEP_SIZES[0], Algorithm::Fast, Environment::Static);
        b.iter(|| {
            let points = sweep_sizes(&SWEEP_SIZES, &base);
            (
                sweeps::finishing_preparing_table(Environment::Static, &points),
                sweeps::switch_time_table(Environment::Static, &points),
                sweeps::overhead_table(Environment::Static, &points),
            )
        })
    });

    // Figures 10, 11 and 12 share one dynamic size sweep.
    group.bench_function("fig10_11_12_dynamic_sweep", |b| {
        let base = ScenarioConfig::quick(SWEEP_SIZES[0], Algorithm::Fast, Environment::Dynamic);
        b.iter(|| {
            let points = sweep_sizes(&SWEEP_SIZES, &base);
            (
                sweeps::finishing_preparing_table(Environment::Dynamic, &points),
                sweeps::switch_time_table(Environment::Dynamic, &points),
                sweeps::overhead_table(Environment::Dynamic, &points),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ratio_tracks, bench_sweeps);
criterion_main!(benches);
