//! Benchmarks of the per-period scheduling path: priority computation,
//! greedy supplier assignment, and the full fast/normal schedulers, as a
//! function of the number of candidate segments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fss_core::{greedy_assign, AssignmentOrder, FastSwitchScheduler, NormalSwitchScheduler};
use fss_gossip::{
    CandidateSegment, SchedulingContext, SegmentId, SegmentScheduler, SessionView, SourceId,
    SupplierInfo,
};

/// A switch context with `old` old-source and `new` new-source candidates,
/// each held by `suppliers` neighbours.
fn context(old: u64, new: u64, suppliers: u32) -> SchedulingContext {
    let make_suppliers = |base_pos: usize| -> Vec<SupplierInfo> {
        (0..suppliers)
            .map(|i| SupplierInfo {
                peer: i + 1,
                rate: 12.0 + i as f64 * 3.0,
                buffer_position: base_pos + i as usize * 7,
                buffer_capacity: 600,
            })
            .collect()
    };
    let mut candidates = Vec::new();
    for id in (200 - old)..200 {
        candidates.push(CandidateSegment {
            id: SegmentId(id),
            suppliers: make_suppliers(250),
        });
    }
    for id in 200..200 + new {
        candidates.push(CandidateSegment {
            id: SegmentId(id),
            suppliers: make_suppliers(20),
        });
    }
    SchedulingContext {
        tau_secs: 1.0,
        play_rate: 10.0,
        inbound_rate: 15.0,
        id_play: SegmentId(200 - old),
        startup_q: 10,
        new_source_qs: 50,
        old_session: Some(SessionView {
            id: SourceId(0),
            first_segment: SegmentId(0),
            last_segment: Some(SegmentId(199)),
        }),
        new_session: Some(SessionView {
            id: SourceId(1),
            first_segment: SegmentId(200),
            last_segment: None,
        }),
        q1: old as usize,
        q2: 50,
        candidates,
    }
}

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling");
    for &candidates in &[20u64, 100, 400] {
        let ctx = context(candidates / 2, candidates / 2, 5);
        group.bench_with_input(
            BenchmarkId::new("greedy_assign", candidates),
            &ctx,
            |b, ctx| b.iter(|| greedy_assign(ctx, AssignmentOrder::ByPriority)),
        );
        group.bench_with_input(
            BenchmarkId::new("fast_scheduler", candidates),
            &ctx,
            |b, ctx| b.iter(|| FastSwitchScheduler::new().schedule(ctx)),
        );
        group.bench_with_input(
            BenchmarkId::new("normal_scheduler", candidates),
            &ctx,
            |b, ctx| b.iter(|| NormalSwitchScheduler::new().schedule(ctx)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
