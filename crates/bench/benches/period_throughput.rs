//! End-to-end period throughput on a 1000-node overlay in steady state.
//!
//! Benchmarks one full scheduling period (buffer-map exchange, discovery,
//! context building, scheduling, transfer resolution, delivery, playback)
//! through:
//!
//! * `reference_period` — the original straight-line implementation
//!   (`step_reference`): fresh allocations, per-id neighbour probing,
//!   map-based transfer resolution;
//! * `optimized_period` — the scratch-arena hot path (`step`): zero
//!   steady-state allocation, dense PeerId indexing, word-level bitset
//!   candidate intersection;
//! * `optimized_period_1k_pool*` (with `--features parallel`) — the same
//!   hot path with the scheduling sweep dispatched onto the persistent
//!   `fss-runtime` worker pool (no thread spawns per period);
//! * `mem/*` — the per-peer footprint meter on the same steady system:
//!   prints steady-state bytes/peer (compact vs legacy layout) and times
//!   one full meter sweep.
//!
//! The measured periods/second ratio and the `mem/*` bytes/peer figures
//! are recorded in `BENCH_period.json` (acceptance targets: ≥ 2× speedup,
//! ≥ 40 % bytes/peer reduction).

use criterion::{criterion_group, criterion_main, Criterion};
use fss_core::FastSwitchScheduler;
use fss_gossip::{GossipConfig, StreamingSystem};
use fss_overlay::OverlayBuilder;
use fss_trace::{GeneratorConfig, TraceGenerator};

const NODES: usize = 1_000;
const WARMUP_PERIODS: u64 = 60;

/// Builds a 1k-node system streamed to steady state.
fn steady_system(seed: u64) -> StreamingSystem {
    let trace = TraceGenerator::new(GeneratorConfig::sized(NODES, seed)).generate("throughput");
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    let source = overlay.active_peers().next().unwrap();
    let mut sys = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        Box::new(FastSwitchScheduler::new()),
    );
    sys.start_initial_source(source);
    sys.run_periods(WARMUP_PERIODS);
    sys
}

fn bench_period_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("period_throughput");
    group.sample_size(10);

    let mut sys = steady_system(1);
    group.bench_function("reference_period_1k", |b| b.iter(|| sys.step_reference()));

    let mut sys = steady_system(1);
    group.bench_function("optimized_period_1k", |b| b.iter(|| sys.step()));

    #[cfg(feature = "parallel")]
    {
        let workers = std::thread::available_parallelism().map_or(2, |n| n.get());
        let pool = std::sync::Arc::new(fss_runtime::WorkerPool::new(workers));
        let mut sys = steady_system(1);
        sys.set_parallelism(workers);
        sys.set_executor(pool.as_executor());
        group.bench_function("optimized_period_1k_pool", |b| b.iter(|| sys.step()));

        // A deliberately oversubscribed pool (4 workers regardless of vCPUs)
        // bounds the dispatch overhead the persistent pool adds per period.
        let pool = std::sync::Arc::new(fss_runtime::WorkerPool::new(4));
        let mut sys = steady_system(1);
        sys.set_parallelism(4);
        sys.set_executor(pool.as_executor());
        group.bench_function("optimized_period_1k_pool4", |b| b.iter(|| sys.step()));
    }

    group.finish();
}

/// The `mem/*` lane: steady-state bytes/peer (the numbers recorded in
/// `BENCH_period.json`) and the cost of one meter sweep over all peers.
fn bench_memory_footprint(c: &mut Criterion) {
    let sys = steady_system(1);
    let mem = sys.report().mem;
    println!(
        "mem/bytes_per_peer_1k: {:.0} B/peer (ring {:.0} + window {:.0} + seqs {:.0} + inline); \
         legacy layout {:.0} B/peer; reduction {:.1}%",
        mem.bytes_per_peer(),
        mem.ring_bytes as f64 / mem.active_peers as f64,
        mem.window_bytes as f64 / mem.active_peers as f64,
        mem.seq_bytes as f64 / mem.active_peers as f64,
        mem.legacy_peer_bytes as f64 / mem.active_peers as f64,
        100.0 * mem.reduction_vs_legacy()
    );

    let mut group = c.benchmark_group("mem");
    group.sample_size(10);
    group.bench_function("usage_sweep_1k", |b| {
        b.iter(|| criterion::black_box(sys.memory_usage()))
    });
    group.finish();
}

criterion_group!(benches, bench_period_throughput, bench_memory_footprint);
criterion_main!(benches);
