//! End-to-end period throughput on a 1000-node overlay in steady state.
//!
//! Benchmarks one full scheduling period (buffer-map exchange, discovery,
//! context building, scheduling, transfer resolution, delivery, playback)
//! through:
//!
//! * `reference_period` — the original straight-line implementation
//!   (`step_reference`): fresh allocations, per-id neighbour probing,
//!   map-based transfer resolution;
//! * `optimized_period` — the scratch-arena hot path (`step`): zero
//!   steady-state allocation, dense PeerId indexing, word-level bitset
//!   candidate intersection;
//! * `optimized_period_1k_pool*` (with `--features parallel`) — the same
//!   hot path with the scheduling sweep dispatched onto the persistent
//!   `fss-runtime` worker pool (no thread spawns per period);
//! * `mem/*` — the per-peer footprint meter on the same steady system:
//!   prints steady-state bytes/peer (compact vs legacy layout) and times
//!   one full meter sweep;
//! * `zap_admission/*` — the per-batch cost of resolving one zap batch
//!   (mover selection + per-arrival neighbour/attribute sampling) through
//!   the legacy collect-then-`choose_multiple` path versus the membership
//!   directory's pooled admission pipeline;
//! * `qoe_overhead/*` — one steady period with QoE event recording on
//!   (the default) versus off: the cost of the streaming telemetry layer
//!   on the playback pass;
//! * `locality/*` — the shard-major fused period pipeline (the default)
//!   against the phase-major ordering it replaced
//!   (`set_phase_major(true)`), unsharded and on an 8-shard store: the
//!   cache-locality dividend of running every per-peer phase while the
//!   shard's columns are hot, with a gated million-peer before/after lane;
//! * `net/*` — the event-driven network core against plain period
//!   stepping: `period_mode_1k` is the lockstep baseline, `event_ideal_1k`
//!   routes the same period through `advance()` with the ideal (zero
//!   latency, zero loss) model installed — byte-identical results, so the
//!   difference is pure event-core bookkeeping (budget ≤ 10 %) — and
//!   `event_faulty_1k` prices a lossy, delayed, jittered period.
//!
//! The measured periods/second ratio, the `mem/*` bytes/peer figures, the
//! `zap_admission/*` per-batch costs and the `qoe_overhead/*` telemetry
//! tax are recorded in `BENCH_period.json` (acceptance targets: ≥ 2×
//! period speedup, ≥ 40 % bytes/peer reduction, directory admission ≤
//! legacy admission, QoE overhead ≤ 5 % of a period).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fss_core::FastSwitchScheduler;
use fss_gossip::{
    AdmissionPipeline, AdmissionScratch, GossipConfig, MembershipView, StreamingSystem,
};
use fss_overlay::{BandwidthConfig, OverlayBuilder, PeerAttrs, PeerId};
use fss_trace::{GeneratorConfig, TraceGenerator};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const NODES: usize = 1_000;
const WARMUP_PERIODS: u64 = 60;

/// Builds a 1k-node system streamed to steady state.
fn steady_system(seed: u64) -> StreamingSystem {
    sharded_steady_system(seed, 1)
}

/// Builds a 1k-node system on `shards` store shards, streamed to steady
/// state.
fn sharded_steady_system(seed: u64, shards: usize) -> StreamingSystem {
    let trace = TraceGenerator::new(GeneratorConfig::sized(NODES, seed)).generate("throughput");
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    let source = overlay.active_peers().next().unwrap();
    let mut sys = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        Box::new(FastSwitchScheduler::new()),
    );
    sys.set_shards(shards);
    sys.start_initial_source(source);
    sys.run_periods(WARMUP_PERIODS);
    sys
}

fn bench_period_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("period_throughput");
    group.sample_size(10);

    let mut sys = steady_system(1);
    group.bench_function("reference_period_1k", |b| b.iter(|| sys.step_reference()));

    let mut sys = steady_system(1);
    group.bench_function("optimized_period_1k", |b| b.iter(|| sys.step()));

    #[cfg(feature = "parallel")]
    {
        let workers = std::thread::available_parallelism().map_or(2, |n| n.get());
        let pool = std::sync::Arc::new(fss_runtime::WorkerPool::new(workers));
        let mut sys = steady_system(1);
        sys.set_parallelism(workers);
        sys.set_executor(pool.as_executor());
        group.bench_function("optimized_period_1k_pool", |b| b.iter(|| sys.step()));

        // A deliberately oversubscribed pool (4 workers regardless of vCPUs)
        // bounds the dispatch overhead the persistent pool adds per period.
        let pool = std::sync::Arc::new(fss_runtime::WorkerPool::new(4));
        let mut sys = steady_system(1);
        sys.set_parallelism(4);
        sys.set_executor(pool.as_executor());
        group.bench_function("optimized_period_1k_pool4", |b| b.iter(|| sys.step()));
    }

    group.finish();
}

/// The `mem/*` lane: steady-state bytes/peer (the numbers recorded in
/// `BENCH_period.json`) and the cost of one meter sweep over all peers.
fn bench_memory_footprint(c: &mut Criterion) {
    let sys = steady_system(1);
    let mem = sys.report().mem;
    println!(
        "mem/bytes_per_peer_1k: {:.0} B/peer (ring {:.0} + window {:.0} + seqs {:.0} + inline); \
         legacy layout {:.0} B/peer; reduction {:.1}%",
        mem.bytes_per_peer(),
        mem.ring_bytes as f64 / mem.active_peers as f64,
        mem.window_bytes as f64 / mem.active_peers as f64,
        mem.seq_bytes as f64 / mem.active_peers as f64,
        mem.legacy_peer_bytes as f64 / mem.active_peers as f64,
        100.0 * mem.reduction_vs_legacy()
    );

    let mut group = c.benchmark_group("mem");
    group.sample_size(10);
    group.bench_function("usage_sweep_1k", |b| {
        b.iter(|| criterion::black_box(sys.memory_usage()))
    });
    group.finish();
}

/// The `period/1m` + `mem/1m` lanes: one full scheduling period and the
/// footprint meter on a **million-peer** sharded system.  Gated behind
/// `FSS_BENCH_1M=1` — the warm-up alone streams 70 periods over a ~4.6 GB
/// working set, which is minutes of wall clock; the default bench run
/// skips it.  The recorded figures live in `BENCH_period.json`
/// (`period/1m`, `mem/1m`).
fn bench_million_peers(c: &mut Criterion) {
    if std::env::var_os("FSS_BENCH_1M").is_none() {
        return;
    }
    const MILLION: usize = 1_000_000;
    let trace = TraceGenerator::new(GeneratorConfig::sized(MILLION, 1)).generate("throughput-1m");
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    let source = overlay.active_peers().next().unwrap();
    let mut sys = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        Box::new(FastSwitchScheduler::new()),
    );
    sys.set_shards(16);
    sys.start_initial_source(source);
    sys.run_periods(70);

    let mem = sys.report().mem;
    println!(
        "mem/1m: {:.0} B/peer, {:.2} GB of peer state over {} shards \
         (legacy layout {:.2} GB; reduction {:.1}%)",
        mem.bytes_per_peer(),
        mem.peer_bytes as f64 / 1e9,
        sys.shard_count(),
        mem.legacy_peer_bytes as f64 / 1e9,
        100.0 * mem.reduction_vs_legacy()
    );

    let mut group = c.benchmark_group("period");
    group.sample_size(10);
    group.bench_function("optimized_period_1m_sharded", |b| b.iter(|| sys.step()));
    group.finish();

    // The million-peer before/after for the fused pipeline: the same warm
    // system stepped phase-major.  The working set dwarfs every cache
    // level, so this lane is where the locality restructuring pays most.
    let mut group = c.benchmark_group("locality");
    group.sample_size(10);
    sys.set_phase_major(true);
    group.bench_function("phase_major_period_1m_sharded", |b| {
        b.iter(|| sys.advance())
    });
    sys.set_phase_major(false);
    group.finish();

    let mut group = c.benchmark_group("mem");
    group.sample_size(10);
    group.bench_function("usage_sweep_1m", |b| {
        b.iter(|| criterion::black_box(sys.memory_usage()))
    });
    group.finish();
}

/// The `locality/*` lane: the cache-locality dividend of the shard-major
/// fused period pipeline.
///
/// * `fused_period_1k` / `fused_period_1k_sharded8` — the default `step()`:
///   per shard run, deliveries are applied and playback advanced while the
///   shard's hot columns are resident;
/// * `phase_major_period_1k` / `phase_major_period_1k_sharded8` — the
///   phase-major ordering the fusion replaced (every phase sweeps all
///   shards before the next starts), kept for one release as the
///   equivalence oracle.
///
/// Both orderings produce byte-identical reports (pinned by
/// `fused_equivalence.rs`); the delta here is pure memory locality.
fn bench_locality(c: &mut Criterion) {
    let mut group = c.benchmark_group("locality");
    group.sample_size(10);

    let mut sys = steady_system(1);
    group.bench_function("fused_period_1k", |b| b.iter(|| sys.step()));

    let mut sys = steady_system(1);
    sys.set_phase_major(true);
    group.bench_function("phase_major_period_1k", |b| b.iter(|| sys.advance()));

    let mut sys = sharded_steady_system(1, 8);
    group.bench_function("fused_period_1k_sharded8", |b| b.iter(|| sys.step()));

    let mut sys = sharded_steady_system(1, 8);
    sys.set_phase_major(true);
    group.bench_function("phase_major_period_1k_sharded8", |b| {
        b.iter(|| sys.advance())
    });

    group.finish();
}

/// The `zap_admission/*` lane: what one zap batch (12 movers out, 12
/// arrivals in, `M = 5` neighbours each) costs to *resolve* on a steady
/// 1k-node channel pair.
///
/// * `legacy_batch_1k` — the pre-directory path (the PR 4 baseline):
///   collect the origin's eligible peers and the target's full candidate
///   list into fresh `Vec`s, then `choose_multiple` (which itself builds an
///   O(channel) index table per call) and per-arrival neighbour `Vec`s.
/// * `directory_batch_1k` — the membership directory: incremental views,
///   pooled scratch, sparse-Fisher–Yates sampling.  Identical RNG stream,
///   identical output, zero allocation.
fn bench_zap_admission(c: &mut Criterion) {
    const BATCH: usize = 12;
    const DEGREE: usize = 5;

    let origin = steady_system(2);
    let target = steady_system(3);
    let origin_source = origin.overlay().active_peers().next().unwrap();
    let bandwidth = BandwidthConfig::default();

    // Sanity: the two paths must agree before we time them.
    let legacy = legacy_resolve(
        &origin,
        &target,
        origin_source,
        BATCH,
        DEGREE,
        bandwidth,
        &mut SmallRng::seed_from_u64(77),
    );
    let mut scratch = AdmissionScratch::default();
    directory_resolve(
        origin.membership_view(),
        target.membership_view(),
        origin_source,
        BATCH,
        DEGREE,
        bandwidth,
        &mut SmallRng::seed_from_u64(77),
        &mut scratch,
    );
    assert_eq!(scratch.movers, legacy.0, "mover selection must agree");
    assert_eq!(scratch.neighbours, legacy.1, "neighbour sets must agree");

    let mut group = c.benchmark_group("zap_admission");
    group.sample_size(20);

    let mut rng = SmallRng::seed_from_u64(5);
    group.bench_function("legacy_batch_1k", |b| {
        b.iter(|| {
            black_box(legacy_resolve(
                &origin,
                &target,
                origin_source,
                BATCH,
                DEGREE,
                bandwidth,
                &mut rng,
            ))
        })
    });

    let mut rng = SmallRng::seed_from_u64(5);
    group.bench_function("directory_batch_1k", |b| {
        b.iter(|| {
            directory_resolve(
                origin.membership_view(),
                target.membership_view(),
                origin_source,
                BATCH,
                DEGREE,
                bandwidth,
                &mut rng,
                &mut scratch,
            );
            black_box(scratch.neighbours.len())
        })
    });

    group.finish();
}

/// The `qoe_overhead/*` lane: the telemetry tax of the streaming QoE
/// recorder on one full steady period.  `events_on_1k` is the default
/// configuration (recorder enabled, one `observe` per peer per period plus
/// the period fold); `events_off_1k` skips the whole event path.  The
/// acceptance target in `BENCH_period.json` is ≤ 5 % overhead.
fn bench_qoe_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("qoe_overhead");
    group.sample_size(10);

    let mut sys = steady_system(1);
    assert!(sys.qoe().is_enabled(), "QoE recording defaults to on");
    group.bench_function("events_on_1k", |b| b.iter(|| sys.step()));
    assert!(
        sys.qoe().totals().startups > 0,
        "the instrumented steps must record startups"
    );

    let mut sys = steady_system(1);
    sys.set_qoe_enabled(false);
    group.bench_function("events_off_1k", |b| b.iter(|| sys.step()));

    group.finish();
}

/// The `net/*` lane: what the event-driven core costs per period.
///
/// `event_ideal_1k` runs the identical workload as `period_mode_1k` —
/// the ideal model skips every fault draw and delivers at the resolving
/// boundary, so the reports stay byte-identical and the measured delta is
/// the queue push/pop and boundary-drain bookkeeping alone.  The
/// acceptance budget in `BENCH_period.json` is ≤ 10 % over period mode.
fn bench_net_overhead(c: &mut Criterion) {
    use fss_overlay::NetworkConfig;

    let mut group = c.benchmark_group("net");
    group.sample_size(10);

    let mut sys = steady_system(1);
    group.bench_function("period_mode_1k", |b| b.iter(|| sys.step()));

    let mut sys = steady_system(1);
    sys.set_network(NetworkConfig::ideal());
    group.bench_function("event_ideal_1k", |b| b.iter(|| sys.advance()));
    assert_eq!(
        sys.network_stats().data_lost,
        0,
        "the ideal model must never sample the loss stream"
    );

    let trace = TraceGenerator::new(GeneratorConfig::sized(NODES, 1)).generate("throughput");
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    let source = overlay.active_peers().next().unwrap();
    let mut sys = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        Box::new(FastSwitchScheduler::new()),
    );
    sys.set_network(NetworkConfig {
        latency_scale: 1.0,
        loss_rate: 0.05,
        jitter_ms: 10,
        seed: 0x25,
    });
    sys.start_initial_source(source);
    sys.run_periods(WARMUP_PERIODS);
    group.bench_function("event_faulty_1k", |b| b.iter(|| sys.advance()));
    assert!(
        sys.network_stats().data_lost > 0,
        "the faulty lane must actually drop messages"
    );

    group.finish();
}

/// The pre-directory zap-batch resolution, verbatim from the PR 4
/// `SessionManager::apply_batch`: fresh collections and per-arrival `Vec`s.
#[allow(clippy::type_complexity)]
fn legacy_resolve(
    origin: &StreamingSystem,
    target: &StreamingSystem,
    origin_source: PeerId,
    batch: usize,
    degree: usize,
    bandwidth: BandwidthConfig,
    rng: &mut SmallRng,
) -> (Vec<PeerId>, Vec<PeerId>, Vec<(PeerAttrs, Vec<PeerId>)>) {
    let eligible: Vec<PeerId> = origin
        .overlay()
        .active_peers()
        .filter(|&p| p != origin_source)
        .collect();
    let non_source_present = origin.overlay().active_count() - 1;
    let floor_reserve = usize::from(non_source_present == eligible.len());
    let quota = eligible.len().saturating_sub(floor_reserve);
    let movers: Vec<PeerId> = eligible
        .choose_multiple(rng, batch.min(quota))
        .copied()
        .collect();
    let candidates: Vec<PeerId> = target.overlay().active_peers().collect();
    let degree = degree.min(candidates.len());
    let mut flat = Vec::new();
    let arrivals: Vec<(PeerAttrs, Vec<PeerId>)> = movers
        .iter()
        .map(|_| {
            let neighbours: Vec<PeerId> =
                candidates.choose_multiple(rng, degree).copied().collect();
            flat.extend_from_slice(&neighbours);
            let attrs = PeerAttrs {
                ping_ms: 80.0 * rng.gen_range(0.5..2.0),
                bandwidth: bandwidth.sample_peer(rng),
            };
            (attrs, neighbours)
        })
        .collect();
    (movers, flat, arrivals)
}

/// The directory path: the same resolution out of pooled scratch.
#[allow(clippy::too_many_arguments)]
fn directory_resolve(
    origin: &MembershipView,
    target: &MembershipView,
    origin_source: PeerId,
    batch: usize,
    degree: usize,
    bandwidth: BandwidthConfig,
    rng: &mut SmallRng,
    scratch: &mut AdmissionScratch,
) {
    let pipeline = AdmissionPipeline;
    scratch.clear();
    pipeline.select_movers(origin, origin_source, |_| false, batch, rng, scratch);
    let degree = degree.min(target.candidates().len());
    for _ in 0..scratch.movers.len() {
        pipeline.sample_neighbours(target, degree, rng, scratch);
        scratch.attrs.push(PeerAttrs {
            ping_ms: 80.0 * rng.gen_range(0.5..2.0),
            bandwidth: bandwidth.sample_peer(rng),
        });
    }
}

criterion_group!(
    benches,
    bench_period_throughput,
    bench_memory_footprint,
    bench_million_peers,
    bench_locality,
    bench_zap_admission,
    bench_qoe_overhead,
    bench_net_overhead
);
criterion_main!(benches);
