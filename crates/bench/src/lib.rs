//! Benchmark harness crate; all content lives under `benches/`.
