//! Memory-budget guard: steady-state bytes/peer must stay within the
//! documented budget.
//!
//! `docs/performance.md` §"Memory model" budgets the per-peer protocol
//! state (arrival ring + availability window + sequence array + inline
//! node) of a steady-state 1 000-node system.  This test streams that
//! system and asserts the meter stays under the budget — so a regression
//! that fattens per-peer state (a wider ring entry, a window that stops
//! compacting, an over-allocating growth path) fails the build instead of
//! silently eroding the million-user headroom.  It also pins the headline
//! claim of the compact layout: ≥ 40 % below what the same state would
//! cost in the pre-compaction layout (u64 ring entries, u32 seqs).

use fss_core::FastSwitchScheduler;
use fss_gossip::{GossipConfig, StreamingSystem};
use fss_overlay::OverlayBuilder;
use fss_trace::{GeneratorConfig, TraceGenerator};

/// The documented steady-state budget: average protocol-state bytes per
/// active peer of a 1k-node system (see docs/performance.md).  Measured at
/// ~4.6 KB on the compact layout (~9.0 KB on the legacy layout); the
/// ceiling leaves a small margin for workload variance, not for layout
/// regressions.
const BYTES_PER_PEER_BUDGET: f64 = 6.0 * 1024.0;

/// Minimum saving versus the pre-compaction layout (acceptance criterion).
const MIN_REDUCTION_VS_LEGACY: f64 = 0.40;

#[test]
fn steady_state_bytes_per_peer_within_budget() {
    let trace = TraceGenerator::new(GeneratorConfig::sized(1_000, 33)).generate("mem-budget");
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    let source = overlay.active_peers().next().unwrap();
    let mut sys = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        Box::new(FastSwitchScheduler::new()),
    );
    sys.start_initial_source(source);
    // Long enough for every buffer to fill (evictions running) and every
    // capacity to reach its steady-state high-water mark.
    sys.run_periods(100);

    let mem = sys.report().mem;
    assert_eq!(mem.active_peers, 1_000);
    let per_peer = mem.bytes_per_peer();
    println!(
        "steady-state 1k-node footprint: {per_peer:.0} B/peer \
         (ring {} B, window {} B, seqs {} B per peer on average; \
         legacy layout would be {:.0} B/peer, saving {:.1}%)",
        mem.ring_bytes / 1_000,
        mem.window_bytes / 1_000,
        mem.seq_bytes / 1_000,
        mem.legacy_peer_bytes as f64 / 1_000.0,
        100.0 * mem.reduction_vs_legacy()
    );
    assert!(
        per_peer <= BYTES_PER_PEER_BUDGET,
        "steady-state footprint {per_peer:.0} B/peer exceeds the documented \
         budget of {BYTES_PER_PEER_BUDGET:.0} B/peer ({mem:?})"
    );
    assert!(
        mem.reduction_vs_legacy() >= MIN_REDUCTION_VS_LEGACY,
        "compact layout saves only {:.1}% vs the legacy layout (≥ {:.0}% required)",
        100.0 * mem.reduction_vs_legacy(),
        100.0 * MIN_REDUCTION_VS_LEGACY
    );
    // Sanity: the meter is live (components populated, system streaming).
    assert!(mem.ring_bytes > 0 && mem.window_bytes > 0 && mem.seq_bytes > 0);
    assert!(sys.report().traffic_total.data_bits > 0);
}

/// The large-scale guard: the same ≤ 6 KiB/peer budget must hold at 100 000
/// peers on the sharded struct-of-arrays store — per-peer state must not
/// grow with the population, and sharding the columns must not add
/// overhead beyond the shards' own reserve slack.  Run in release mode by
/// the CI bench-smoke lane (`cargo test --release -- --ignored`); ignored
/// in the default suite because a debug-mode 100k-peer warm-up takes
/// minutes.
#[test]
#[ignore = "large-scale run: 100k peers to steady state (run with --release)"]
fn sharded_100k_bytes_per_peer_within_budget() {
    let trace =
        TraceGenerator::new(GeneratorConfig::sized(100_000, 35)).generate("mem-budget-100k");
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    let source = overlay.active_peers().next().unwrap();
    let mut sys = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        Box::new(FastSwitchScheduler::new()),
    );
    sys.set_shards(16);
    assert!(sys.shard_count() > 1, "the store must actually be sharded");
    sys.start_initial_source(source);
    sys.run_periods(80);

    let mem = sys.report().mem;
    assert_eq!(mem.active_peers, 100_000);
    let per_peer = mem.bytes_per_peer();
    println!(
        "steady-state 100k-node sharded footprint: {per_peer:.0} B/peer \
         ({:.1} MB of peer state, {:.1}% below the legacy layout)",
        mem.peer_bytes as f64 / 1e6,
        100.0 * mem.reduction_vs_legacy()
    );
    assert!(
        per_peer <= BYTES_PER_PEER_BUDGET,
        "100k-peer sharded footprint {per_peer:.0} B/peer exceeds the \
         documented budget of {BYTES_PER_PEER_BUDGET:.0} B/peer ({mem:?})"
    );
    assert!(mem.reduction_vs_legacy() >= MIN_REDUCTION_VS_LEGACY);
    assert!(sys.report().traffic_total.data_bits > 0);
}
