//! Asserts the tentpole property: after warm-up, the steady-state period
//! loop performs **zero heap allocations** — every buffer lives in the
//! reused scratch arena.
//!
//! A counting wrapper around the system allocator tallies every allocation
//! on this test binary; the test warms a 300-node system until all scratch
//! buffers, pools and hash maps have reached their high-water marks, then
//! runs further periods with the counter armed.

use fss_core::FastSwitchScheduler;
use fss_gossip::{GossipConfig, StreamingSystem};
use fss_overlay::OverlayBuilder;
use fss_trace::{GeneratorConfig, TraceGenerator};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_period_loop_does_not_allocate() {
    let trace = TraceGenerator::new(GeneratorConfig::sized(300, 21)).generate("zero-alloc");
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    let source = overlay.active_peers().next().unwrap();

    let mut sys = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        Box::new(FastSwitchScheduler::new()),
    );
    sys.start_initial_source(source);

    // Warm-up: playback starts, buffers fill to capacity (evictions begin),
    // scratch arenas, pools and hash maps reach their steady capacities.
    sys.run_periods(80);

    let before = allocations();
    sys.run_periods(20);
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "steady-state periods allocated {during} times; the scratch arena must absorb all working memory"
    );

    // Sanity: the system is actually doing work, not idling.
    let report = sys.report();
    assert_eq!(report.periods, 100);
    assert!(report.traffic_total.data_bits > 0);

    // The reference implementation allocates heavily — confirming the
    // counter actually observes the loop.
    let before = allocations();
    sys.run_periods_reference(1);
    assert!(
        allocations() - before > 100,
        "reference path should allocate (counter sanity check)"
    );
}

/// The same guarantee for the pool-backed parallel path: dispatching the
/// scheduling sweep onto the persistent `fss-runtime` worker pool (raw
/// job pointer under a mutex, chunk-stealing cursor, condvar parking) must
/// not allocate either — the pool exists precisely to amortise all per-
/// period costs away.
///
/// Only the main thread's allocations are deterministic to count (worker
/// threads park/unpark on futexes, no heap), so the counting allocator
/// tallies every thread — a worker-side allocation would fail the test too.
#[cfg(feature = "parallel")]
#[test]
fn steady_state_pool_parallel_period_loop_does_not_allocate() {
    use fss_runtime::WorkerPool;
    use std::sync::Arc;

    let trace = TraceGenerator::new(GeneratorConfig::sized(300, 22)).generate("zero-alloc-pool");
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    let source = overlay.active_peers().next().unwrap();

    let pool = Arc::new(WorkerPool::new(4));
    let mut sys = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        Box::new(FastSwitchScheduler::new()),
    );
    sys.set_parallelism(4);
    sys.set_executor(pool.as_executor());
    sys.start_initial_source(source);

    // Warm-up: scratch arenas and per-chunk worker slots reach their
    // high-water marks; the pool's threads are long since spawned.
    sys.run_periods(80);

    let before = allocations();
    sys.run_periods(20);
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "pool-backed steady-state periods allocated {during} times; job dispatch must be allocation-free"
    );

    let report = sys.report();
    assert_eq!(report.periods, 100);
    assert!(report.traffic_total.data_bits > 0);
}
