//! Asserts the tentpole property: after warm-up, the steady-state period
//! loop performs **zero heap allocations** — every buffer lives in the
//! reused scratch arena.
//!
//! A counting wrapper around the system allocator tallies every allocation
//! on this test binary; the test warms a 300-node system until all scratch
//! buffers, pools and hash maps have reached their high-water marks, then
//! runs further periods with the counter armed.

use fss_core::FastSwitchScheduler;
use fss_gossip::{GossipConfig, StreamingSystem};
use fss_overlay::OverlayBuilder;
use fss_trace::{GeneratorConfig, TraceGenerator};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_period_loop_does_not_allocate() {
    let trace = TraceGenerator::new(GeneratorConfig::sized(300, 21)).generate("zero-alloc");
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    let source = overlay.active_peers().next().unwrap();

    let mut sys = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        Box::new(FastSwitchScheduler::new()),
    );
    sys.start_initial_source(source);
    // QoE event recording defaults to ON — the zero-allocation guarantee
    // below covers the instrumented playback pass, not a stripped build.
    assert!(sys.qoe().is_enabled());

    // Warm-up: playback starts, buffers fill to capacity (evictions begin),
    // scratch arenas, pools and hash maps reach their steady capacities.
    sys.run_periods(80);

    let before = allocations();
    sys.run_periods(20);
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "steady-state periods allocated {during} times; the scratch arena must absorb all working memory"
    );

    // Sanity: the system is actually doing work, not idling.
    let report = sys.report();
    assert_eq!(report.periods, 100);
    assert!(report.traffic_total.data_bits > 0);

    // The reference implementation allocates heavily — confirming the
    // counter actually observes the loop.
    let before = allocations();
    sys.run_periods_reference(1);
    assert!(
        allocations() - before > 100,
        "reference path should allocate (counter sanity check)"
    );
}

/// The membership-directory guarantee: resolving a zap batch — mover
/// selection from the origin channel's view, per-arrival neighbour and
/// attribute sampling from the target channel's view — allocates **zero**
/// heap in steady state.  Before the directory existed this path collected
/// the target channel's entire `active_peers()` into a fresh `Vec` per
/// batch and cloned a neighbour `Vec` per arrival (and the vendored
/// `choose_multiple` allocates an O(channel) index table per call); the
/// pooled [`fss_gossip::AdmissionScratch`] plus the sparse-Fisher–Yates
/// sampler absorb all of it.
///
/// The admission *mutation* (actually adding the peers) is deliberately
/// outside the guarantee: a brand-new peer's protocol state (buffer,
/// window, ring) is genuine growth, not per-batch working memory — ids are
/// never reused.
#[test]
fn steady_state_zap_batch_resolution_does_not_allocate() {
    use fss_gossip::AdmissionPipeline;
    use fss_overlay::BandwidthConfig;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let build = |seed: u64| {
        let trace =
            TraceGenerator::new(GeneratorConfig::sized(250, seed)).generate("zero-alloc-zap");
        let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
        let source = overlay.active_peers().next().unwrap();
        let mut sys = StreamingSystem::new(
            overlay,
            GossipConfig::paper_default(),
            Box::new(FastSwitchScheduler::new()),
        );
        sys.start_initial_source(source);
        sys.run_periods(40);
        (sys, source)
    };
    let (origin, origin_source) = build(31);
    let (target, _) = build(32);

    let pipeline = AdmissionPipeline;
    let mut scratch = fss_gossip::AdmissionScratch::default();
    let mut rng = SmallRng::seed_from_u64(9);
    let bandwidth = BandwidthConfig::default();
    let resolve_batch = |scratch: &mut fss_gossip::AdmissionScratch, rng: &mut SmallRng| -> usize {
        scratch.clear();
        pipeline.select_movers(
            origin.membership_view(),
            origin_source,
            |_| false,
            12,
            rng,
            scratch,
        );
        let view = target.membership_view();
        let degree = 5.min(view.candidates().len());
        for _ in 0..scratch.movers.len() {
            pipeline.sample_neighbours(view, degree, rng, scratch);
            scratch.attrs.push(fss_overlay::PeerAttrs {
                ping_ms: 80.0 * rng.gen_range(0.5..2.0),
                bandwidth: bandwidth.sample_peer(rng),
            });
        }
        scratch.movers.len() + scratch.neighbours.len()
    };

    // Warm-up: the pooled buffers and the sampler's displacement table
    // reach their high-water capacities.
    let mut produced = 0;
    for _ in 0..50 {
        produced += resolve_batch(&mut scratch, &mut rng);
    }

    let before = allocations();
    for _ in 0..50 {
        produced += resolve_batch(&mut scratch, &mut rng);
    }
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "steady-state zap-batch resolution allocated {during} times; \
         the admission scratch must absorb all working memory"
    );
    assert!(produced > 0, "the batches actually resolved work");
}

/// The sharded struct-of-arrays store keeps the guarantee: with the peer
/// columns split over multiple shards the scheduling pass runs one chunk
/// per shard (serially without the `parallel` feature), and the chunk plan
/// lives in the pooled `PeriodScratch` — steady-state periods still touch
/// the heap zero times.
#[test]
fn sharded_steady_state_period_loop_does_not_allocate() {
    let trace = TraceGenerator::new(GeneratorConfig::sized(300, 23)).generate("zero-alloc-shard");
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    let source = overlay.active_peers().next().unwrap();

    let mut sys = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        Box::new(FastSwitchScheduler::new()),
    );
    sys.set_shards(4);
    assert!(sys.shard_count() > 1, "the store must actually be sharded");
    sys.start_initial_source(source);

    sys.run_periods(80);

    let before = allocations();
    sys.run_periods(20);
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "sharded steady-state periods allocated {during} times; \
         the chunk plan and shard columns must be allocation-free"
    );

    let report = sys.report();
    assert_eq!(report.periods, 100);
    assert!(report.traffic_total.data_bits > 0);
}

/// The event-driven stepping mode keeps the guarantee: with a delayed,
/// jittered network model installed, every in-flight message lives in the
/// pre-reserved event queue (`NetMessage` is `Copy`, the heap was sized
/// from the bandwidth budget and the latency horizon at `set_network`
/// time) and the jitter draws are stateless hashes — so steady-state event
/// periods still touch the heap zero times.
///
/// Loss is deliberately outside the guarantee, mirroring the admission-
/// mutation exclusion above: a lost segment is missing *protocol* state,
/// not working memory.  A peer whose needed segment ages out of every
/// neighbour's buffer stalls for good, and its re-request window (the
/// scheduler's candidate set) then legitimately tracks the advancing
/// stream head — genuine state growth the scratch arena must absorb by
/// growing, at any loss rate.  The fault-injection suite in `fss-runtime`
/// pins lossy runs by digest instead.
#[test]
fn steady_state_event_mode_stepping_does_not_allocate() {
    use fss_overlay::NetworkConfig;

    let trace = TraceGenerator::new(GeneratorConfig::sized(300, 25)).generate("zero-alloc-event");
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    let source = overlay.active_peers().next().unwrap();

    let mut sys = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        Box::new(FastSwitchScheduler::new()),
    );
    // Trace latencies at full scale plus jitter: every message is deferred
    // through the event queue and every data leg samples the jitter
    // stream, but RTTs stay under the scheduling period, so the queue's
    // high-water mark sits well inside the capacity reserved by
    // `set_network`.
    sys.set_network(NetworkConfig {
        latency_scale: 1.0,
        loss_rate: 0.0,
        jitter_ms: 10,
        seed: 0x25,
    });
    sys.start_initial_source(source);

    sys.run_periods(80);

    let before = allocations();
    sys.run_periods(20);
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "event-mode steady-state periods allocated {during} times; \
         the pre-reserved event queue must absorb all in-flight messages"
    );

    let report = sys.report();
    assert_eq!(report.periods, 100);
    assert!(report.traffic_total.data_bits > 0);
    let stats = sys.network_stats();
    assert!(
        stats.max_in_flight > 0,
        "messages must actually defer through the event queue"
    );
    assert!(stats.data_delivered > 0, "segments must still flow");
}

/// The streaming metric path: recording samples into a
/// [`fss_metrics::QuantileSketch`], merging sketches (the cross-channel
/// report fold) and deriving the summary all run on fixed-size bucket
/// arrays — zero heap after construction.
#[test]
fn sketch_record_merge_and_fold_do_not_allocate() {
    use fss_metrics::{QuantileSketch, ZapSummary};

    let mut local = QuantileSketch::new(1.0);
    let mut merged = QuantileSketch::new(1.0);

    let before = allocations();
    for i in 0..10_000u64 {
        local.record((i % 97) as f64);
    }
    merged.merge_from(&local);
    merged.merge_from(&local);
    let summary = ZapSummary::from_sketch(&merged, 7);
    let p50 = merged.quantile(0.5);
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "sketch record/merge/fold allocated {during} times; \
         the fixed bucket arrays must absorb everything"
    );
    assert_eq!(summary.completed, 20_000);
    assert!(p50 >= 0.0);
}

/// The streaming QoE telemetry pipeline end to end: stepping with events
/// ON (one `observe` per peer per period, the period fold, the event
/// buffers) *plus* the per-period harvest the runtime performs — pushing
/// the row into a bounded [`fss_metrics::Timeline`] (including its in-place
/// 2× decimations) and streaming the startup / stall-duration events into
/// [`fss_metrics::QuantileSketch`]es — allocates **zero** heap in steady
/// state.  The recorder pre-reserves its event buffers, the timeline
/// pre-reserves its ring, and decimation merges in place.
#[test]
fn telemetry_enabled_stepping_and_harvest_do_not_allocate() {
    use fss_metrics::{QoeWindow, QuantileSketch, Timeline};

    let trace = TraceGenerator::new(GeneratorConfig::sized(300, 24)).generate("zero-alloc-qoe");
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    let source = overlay.active_peers().next().unwrap();
    let mut sys = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        Box::new(FastSwitchScheduler::new()),
    );
    sys.start_initial_source(source);
    assert!(sys.qoe().is_enabled());
    sys.run_periods(80);

    // A deliberately tiny ring: 24 pushes over an 8-window timeline force
    // two decimations *inside* the counted region.
    let mut timeline = Timeline::new(8);
    let mut startup = QuantileSketch::new(1.0);
    let mut stall = QuantileSketch::new(1.0);

    let before = allocations();
    for _ in 0..24 {
        sys.step();
        let sample = *sys.qoe().latest().unwrap();
        timeline.push(QoeWindow::from_sample(&sample));
        for &delay in sys.qoe().startup_delays_periods() {
            startup.record(delay as f64);
        }
        for &duration in sys.qoe().stall_durations_periods() {
            stall.record(duration as f64);
        }
    }
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "telemetry-enabled stepping + harvest allocated {during} times; \
         the event buffers, the bounded timeline and the sketches must all \
         be allocation-free in steady state"
    );

    // Sanity: the telemetry actually observed the run.
    assert_eq!(timeline.samples(), 24);
    assert!(timeline.stride() > 1, "the ring must have decimated");
    let observed: u64 = timeline.windows().map(|w| w.periods).sum();
    assert_eq!(observed, 24);
    assert!(sys.qoe().totals().startups > 0);
}

/// The percentile regression fix: `Summary::quantile` used to clone and
/// sort the sample on **every** call.  [`fss_metrics::SortedSample`] sorts
/// once at construction; repeated quantile queries must not allocate.
#[test]
fn sorted_sample_quantile_does_not_allocate_per_call() {
    use fss_metrics::{SortedSample, Summary};

    let values: Vec<f64> = (0..5_000).rev().map(|v| (v % 311) as f64).collect();
    let sorted = SortedSample::from_values(&values);

    let before = allocations();
    let mut acc = 0.0;
    for i in 0..1_000 {
        acc += sorted.quantile(i as f64 / 1_000.0);
        acc += Summary::of(&values).mean;
    }
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "quantile/summary queries allocated {during} times; \
         sort-once means query-many for free"
    );
    assert!(acc > 0.0);
}

/// The same guarantee for the pool-backed parallel path: dispatching the
/// scheduling sweep onto the persistent `fss-runtime` worker pool (raw
/// job pointer under a mutex, chunk-stealing cursor, condvar parking) must
/// not allocate either — the pool exists precisely to amortise all per-
/// period costs away.
///
/// Only the main thread's allocations are deterministic to count (worker
/// threads park/unpark on futexes, no heap), so the counting allocator
/// tallies every thread — a worker-side allocation would fail the test too.
#[cfg(feature = "parallel")]
#[test]
fn steady_state_pool_parallel_period_loop_does_not_allocate() {
    use fss_runtime::WorkerPool;
    use std::sync::Arc;

    let trace = TraceGenerator::new(GeneratorConfig::sized(300, 22)).generate("zero-alloc-pool");
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    let source = overlay.active_peers().next().unwrap();

    let pool = Arc::new(WorkerPool::new(4));
    let mut sys = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        Box::new(FastSwitchScheduler::new()),
    );
    sys.set_parallelism(4);
    sys.set_executor(pool.as_executor());
    sys.start_initial_source(source);

    // Warm-up: scratch arenas and per-chunk worker slots reach their
    // high-water marks; the pool's threads are long since spawned.
    sys.run_periods(80);

    let before = allocations();
    sys.run_periods(20);
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "pool-backed steady-state periods allocated {during} times; job dispatch must be allocation-free"
    );

    let report = sys.report();
    assert_eq!(report.periods, 100);
    assert!(report.traffic_total.data_bits > 0);
}
