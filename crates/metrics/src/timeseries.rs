//! The ratio tracks of Figures 5 and 9.

use fss_gossip::RatioSample;
use serde::{Deserialize, Serialize};

/// A cleaned-up ratio track: one row per second since the switch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RatioTrack {
    rows: Vec<RatioSample>,
}

impl RatioTrack {
    /// Builds a track from raw samples, sorted by time.
    pub fn from_samples(samples: &[RatioSample]) -> RatioTrack {
        let mut rows = samples.to_vec();
        rows.sort_by(|a, b| a.secs.total_cmp(&b.secs));
        RatioTrack { rows }
    }

    /// The rows, ordered by time.
    pub fn rows(&self) -> &[RatioSample] {
        &self.rows
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the track holds no samples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Linear interpolation of the undelivered-`S1` ratio at `secs`.
    pub fn undelivered_s1_at(&self, secs: f64) -> f64 {
        self.interpolate(secs, |r| r.undelivered_ratio_s1)
    }

    /// Linear interpolation of the delivered-`S2` ratio at `secs`.
    pub fn delivered_s2_at(&self, secs: f64) -> f64 {
        self.interpolate(secs, |r| r.delivered_ratio_s2)
    }

    /// First time at which the delivered-`S2` ratio reaches `threshold`
    /// (`None` if it never does).
    pub fn time_to_delivered(&self, threshold: f64) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.delivered_ratio_s2 >= threshold)
            .map(|r| r.secs)
    }

    /// First time at which the undelivered-`S1` ratio drops to `threshold`.
    pub fn time_to_undelivered(&self, threshold: f64) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.undelivered_ratio_s1 <= threshold)
            .map(|r| r.secs)
    }

    fn interpolate(&self, secs: f64, value: impl Fn(&RatioSample) -> f64) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        if secs <= self.rows[0].secs {
            return value(&self.rows[0]);
        }
        if secs >= self.rows[self.rows.len() - 1].secs {
            return value(&self.rows[self.rows.len() - 1]);
        }
        let after = match self.rows.iter().position(|r| r.secs >= secs) {
            Some(i) => i,
            // Unreachable given the bound check above; clamping to the last
            // row keeps the interpolation total anyway.
            None => return value(&self.rows[self.rows.len() - 1]),
        };
        let (a, b) = (&self.rows[after - 1], &self.rows[after]);
        let span = b.secs - a.secs;
        if span <= 0.0 {
            return value(b);
        }
        let w = (secs - a.secs) / span;
        value(a) * (1.0 - w) + value(b) * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(secs: f64, undelivered: f64, delivered: f64) -> RatioSample {
        RatioSample {
            secs,
            undelivered_ratio_s1: undelivered,
            delivered_ratio_s2: delivered,
        }
    }

    fn track() -> RatioTrack {
        RatioTrack::from_samples(&[
            sample(3.0, 0.4, 0.6),
            sample(1.0, 0.8, 0.2),
            sample(2.0, 0.6, 0.4),
            sample(4.0, 0.0, 1.0),
        ])
    }

    #[test]
    fn rows_are_sorted_by_time() {
        let t = track();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        let times: Vec<f64> = t.rows().iter().map(|r| r.secs).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn interpolation_between_and_outside_samples() {
        let t = track();
        assert!((t.undelivered_s1_at(1.5) - 0.7).abs() < 1e-12);
        assert!((t.delivered_s2_at(2.5) - 0.5).abs() < 1e-12);
        // Clamped at the ends.
        assert_eq!(t.undelivered_s1_at(0.0), 0.8);
        assert_eq!(t.delivered_s2_at(100.0), 1.0);
        // Exactly on a sample.
        assert_eq!(t.delivered_s2_at(3.0), 0.6);
    }

    #[test]
    fn threshold_crossings() {
        let t = track();
        assert_eq!(t.time_to_delivered(1.0), Some(4.0));
        assert_eq!(t.time_to_delivered(0.35), Some(2.0));
        assert_eq!(t.time_to_delivered(1.5), None);
        assert_eq!(t.time_to_undelivered(0.0), Some(4.0));
        assert_eq!(t.time_to_undelivered(0.65), Some(2.0));
    }

    #[test]
    fn empty_track() {
        let t = RatioTrack::from_samples(&[]);
        assert!(t.is_empty());
        assert_eq!(t.undelivered_s1_at(1.0), 0.0);
        assert_eq!(t.time_to_delivered(0.5), None);
    }
}
