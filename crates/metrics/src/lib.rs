//! Metric aggregation and reporting.
//!
//! `fss-gossip` records raw observations (per-node switch records, per-period
//! ratio samples, traffic counters); this crate turns them into the metrics
//! the paper reports:
//!
//! * [`summary::Summary`] — generic descriptive statistics (plus
//!   [`summary::SortedSample`], a sort-once quantile lookup),
//! * [`sketch::QuantileSketch`] — fixed-size, order-independently
//!   mergeable percentile sketches: the O(1)-memory streaming replacement
//!   for per-event metric vectors at million-peer scale,
//! * [`switch::SwitchSummary`] — average finishing time of `S1`, average
//!   preparing time of `S2` (= average switch time), completion rate, and the
//!   [`switch::reduction_ratio`] between two algorithms (Figures 6, 7, 10,
//!   11),
//! * [`switch::ZapSummary`] — channel-zap startup delays of the
//!   multi-channel runtime (viewers hopping between concurrent streams),
//! * [`zapload::ZapLoadSummary`] — the arrival skew across channels
//!   realised by a popularity-skewed (Zipf / flash-crowd) zap workload,
//! * [`admission::AdmissionSummary`] — queue depth, admission-delay
//!   distribution and view staleness of the membership directory's
//!   rate-limited admission pipeline,
//! * [`mem::MemSummary`] — the per-peer memory footprint (bytes/peer,
//!   ring / window / sequence breakdown) aggregated across systems,
//! * [`qoe::Timeline`] — fixed-capacity QoE / queue-depth timelines with
//!   deterministic 2× decimation, and [`qoe::Scorecard`] — the diffable
//!   scalar QoE summary of one run (see `docs/observability.md`),
//! * [`timeseries::RatioTrack`] — the undelivered-`S1` / delivered-`S2`
//!   tracks of Figures 5 and 9,
//! * [`overhead::OverheadSummary`] — the communication overhead of Figures 8
//!   and 12, and
//! * [`report::Table`] — fixed-width text tables / CSV used by the `figures`
//!   binary and EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod admission;
pub mod mem;
pub mod overhead;
pub mod qoe;
pub mod report;
pub mod sketch;
pub mod summary;
pub mod switch;
pub mod timeseries;
pub mod zapload;

pub use admission::AdmissionSummary;
pub use mem::MemSummary;
pub use overhead::OverheadSummary;
pub use qoe::{
    DepthWindow, QoeWindow, Scorecard, ScorecardDelta, ScorecardParseError, Timeline,
    TimelineWindow,
};
pub use report::Table;
pub use sketch::QuantileSketch;
pub use summary::{SortedSample, Summary};
pub use switch::{reduction_ratio, SwitchSummary, ZapSummary};
pub use timeseries::RatioTrack;
pub use zapload::ZapLoadSummary;
