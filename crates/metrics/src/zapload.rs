//! Arrival-skew metrics for multi-channel zap workloads.
//!
//! A popularity-skewed workload (Zipf target channels, flash-crowd storms)
//! is only as real as its observable effect: how unevenly zap arrivals
//! land across channels.  [`ZapLoadSummary`] condenses the per-channel
//! arrival counts into the three numbers experiments sweep against — the
//! busiest channel's share, and the Gini coefficient of the whole arrival
//! distribution (0 = perfectly even, → 1 = all arrivals on one channel).

use serde::{Deserialize, Serialize};

/// How zap arrivals are distributed over channels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZapLoadSummary {
    /// Total zap arrivals across all channels.
    pub total_arrivals: usize,
    /// Channel receiving the most arrivals (lowest index on ties; 0 when no
    /// arrivals were observed).
    pub busiest_channel: usize,
    /// The busiest channel's share of all arrivals (0 when none).
    pub busiest_share: f64,
    /// Gini coefficient of the arrival counts: 0 for a perfectly even
    /// spread, approaching 1 as one channel absorbs everything.
    pub gini: f64,
}

impl ZapLoadSummary {
    /// Builds the summary from per-channel arrival counts (index =
    /// channel).
    pub fn from_arrivals(arrivals: &[usize]) -> ZapLoadSummary {
        let total: usize = arrivals.iter().sum();
        if total == 0 || arrivals.is_empty() {
            return ZapLoadSummary {
                total_arrivals: 0,
                busiest_channel: 0,
                busiest_share: 0.0,
                gini: 0.0,
            };
        }
        let busiest_channel = arrivals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            // `arrivals` is non-empty here (guarded above); 0 is the
            // convention already used for the empty summary.
            .map_or(0, |(i, _)| i);
        // Gini via the sorted-rank formula:
        //   G = (2 Σ_i i·x_i) / (n Σ x) − (n + 1) / n,   x sorted ascending,
        // with i ranging 1..=n.
        let mut sorted: Vec<usize> = arrivals.to_vec();
        sorted.sort_unstable();
        let n = sorted.len() as f64;
        let weighted: f64 = sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
            .sum();
        let gini = (2.0 * weighted / (n * total as f64) - (n + 1.0) / n).max(0.0);
        ZapLoadSummary {
            total_arrivals: total,
            busiest_channel,
            busiest_share: arrivals[busiest_channel] as f64 / total as f64,
            gini,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_spread_has_zero_gini() {
        let s = ZapLoadSummary::from_arrivals(&[25, 25, 25, 25]);
        assert_eq!(s.total_arrivals, 100);
        assert_eq!(s.busiest_channel, 0, "ties resolve to the lowest index");
        assert!((s.busiest_share - 0.25).abs() < 1e-12);
        assert!(s.gini.abs() < 1e-12);
    }

    #[test]
    fn concentration_drives_gini_towards_one() {
        let s = ZapLoadSummary::from_arrivals(&[0, 0, 0, 100]);
        assert_eq!(s.busiest_channel, 3);
        assert_eq!(s.busiest_share, 1.0);
        assert!((s.gini - 0.75).abs() < 1e-12, "gini {}", s.gini);

        let skewed = ZapLoadSummary::from_arrivals(&[60, 20, 10, 10]);
        let even = ZapLoadSummary::from_arrivals(&[25, 25, 25, 25]);
        assert!(skewed.gini > even.gini);
    }

    #[test]
    fn empty_and_zero_arrivals() {
        for summary in [
            ZapLoadSummary::from_arrivals(&[]),
            ZapLoadSummary::from_arrivals(&[0, 0, 0]),
        ] {
            assert_eq!(summary.total_arrivals, 0);
            assert_eq!(summary.busiest_share, 0.0);
            assert_eq!(summary.gini, 0.0);
        }
    }

    #[test]
    fn zipf_like_counts_rank_sensibly() {
        // Counts shaped like Zipf(1): shares 1/1, 1/2, 1/3, 1/4, 1/5.
        let s = ZapLoadSummary::from_arrivals(&[60, 30, 20, 15, 12]);
        assert_eq!(s.busiest_channel, 0);
        assert!(s.busiest_share > 0.4);
        assert!(s.gini > 0.3 && s.gini < 0.6, "gini {}", s.gini);
    }
}
