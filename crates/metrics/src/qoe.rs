//! Bounded QoE timelines and diffable scenario scorecards.
//!
//! `fss-gossip` emits one counter-only [`PeriodSample`] row per period
//! (startups, stall episodes, continuity, switch progress — see
//! `fss_gossip::qoe`); this module turns those rows into artefacts whose
//! size is **independent of run length and population**:
//!
//! * [`Timeline`] — a fixed-capacity ring of per-period windows.  Once the
//!   ring is full, adjacent windows merge pairwise (deterministic 2×
//!   decimation, the stride of every slot doubling), so a 100-period run
//!   and a 100-million-period run occupy the same memory and the structure
//!   is a pure function of the sample sequence — byte-identical across
//!   worker counts, shard counts and stepping modes.
//! * [`QoeWindow`] / [`DepthWindow`] — the concrete window types: playback
//!   QoE counters and admission-queue depth gauges.  Windows merge two
//!   ways: *in time* (adjacent periods, when the ring decimates) and
//!   *across channels* (the same period span from another channel, when a
//!   report folds per-channel timelines in channel order).
//! * [`Scorecard`] — the scalar summary of one run (startup percentiles,
//!   stall rate and duration, continuity floor, switch-completion drain,
//!   admission peaks) with an exact text round-trip
//!   ([`Scorecard::to_text`] / [`Scorecard::from_text`]) and a
//!   [`Scorecard::diff`] the experiment harness prints across configs.
//!
//! See `docs/observability.md` for the event taxonomy and the memory model.

use crate::sketch::QuantileSketch;
use fss_gossip::{MemoryFootprint, PeriodSample};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A per-period aggregation window a [`Timeline`] can decimate in time and
/// a report can fold across channels.
pub trait TimelineWindow: Clone {
    /// Merges `other`, the window covering the periods immediately after
    /// `self` (the ring's 2× decimation step).
    fn absorb_next(&mut self, other: &Self);
    /// Merges `other`, the **same** period span observed by another
    /// channel (the report-time channel fold).
    fn fold_channel(&mut self, other: &Self);
}

/// Fixed-capacity timeline: at most `capacity` windows, each covering
/// `stride` periods.  Pushing beyond the capacity merges adjacent windows
/// pairwise and doubles the stride — memory stays O(capacity) for any run
/// length, and the result depends only on the pushed sequence.
///
/// Steady-state pushes never allocate: the slot vector is pre-reserved at
/// construction and decimation shrinks it in place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline<W> {
    slots: Vec<W>,
    capacity: usize,
    stride: u64,
    /// The window currently accumulating raw samples (absent between
    /// strides).
    pending: Option<W>,
    /// Raw samples absorbed into `pending` so far.
    pending_count: u64,
    /// Total raw samples pushed over the timeline's lifetime.
    samples: u64,
}

impl<W: TimelineWindow> Timeline<W> {
    /// Creates an empty timeline of at most `capacity` windows.
    ///
    /// # Panics
    /// Panics unless `capacity` is even and at least 2 (decimation halves
    /// the ring).
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity >= 2 && capacity.is_multiple_of(2),
            "timeline capacity must be even and >= 2 (got {capacity})"
        );
        Timeline {
            slots: Vec::with_capacity(capacity),
            capacity,
            stride: 1,
            pending: None,
            pending_count: 0,
            samples: 0,
        }
    }

    /// Appends one raw per-period sample.
    pub fn push(&mut self, sample: W) {
        self.samples += 1;
        match self.pending.as_mut() {
            Some(pending) => pending.absorb_next(&sample),
            None => self.pending = Some(sample),
        }
        self.pending_count += 1;
        if self.pending_count == self.stride {
            let full = self.pending.take().expect("pending window exists");
            self.pending_count = 0;
            self.slots.push(full);
            if self.slots.len() == self.capacity {
                self.decimate();
            }
        }
    }

    /// Merges adjacent slot pairs in place and doubles the stride.
    fn decimate(&mut self) {
        let half = self.slots.len() / 2;
        for i in 0..half {
            let mut merged = self.slots[2 * i].clone();
            merged.absorb_next(&self.slots[2 * i + 1]);
            self.slots[i] = merged;
        }
        self.slots.truncate(half);
        self.stride *= 2;
    }

    /// Folds another channel's timeline into this one, window by window.
    /// Both timelines must have seen the same number of samples at the
    /// same capacity (every channel of a session runs the same periods),
    /// so their strides and shapes agree.
    ///
    /// # Panics
    /// Panics if the shapes disagree.
    pub fn fold_channel(&mut self, other: &Timeline<W>) {
        assert_eq!(self.capacity, other.capacity, "timeline capacity mismatch");
        assert_eq!(
            self.samples, other.samples,
            "timeline sample-count mismatch"
        );
        debug_assert_eq!(self.stride, other.stride);
        debug_assert_eq!(self.slots.len(), other.slots.len());
        for (mine, theirs) in self.slots.iter_mut().zip(&other.slots) {
            mine.fold_channel(theirs);
        }
        match (self.pending.as_mut(), other.pending.as_ref()) {
            (Some(mine), Some(theirs)) => mine.fold_channel(theirs),
            (None, None) => {}
            _ => unreachable!("equal sample counts imply equal pending state"),
        }
    }

    /// The completed windows, oldest first (the still-accumulating tail is
    /// [`pending`](Self::pending)).
    pub fn slots(&self) -> &[W] {
        &self.slots
    }

    /// The window still accumulating samples, if any.
    pub fn pending(&self) -> Option<&W> {
        self.pending.as_ref()
    }

    /// Iterates every window in time order: completed slots, then the
    /// pending tail.
    pub fn windows(&self) -> impl Iterator<Item = &W> {
        self.slots.iter().chain(self.pending.as_ref())
    }

    /// Periods currently covered by each completed window.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The configured maximum window count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total raw samples pushed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }
}

impl<W> MemoryFootprint for Timeline<W> {
    fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<W>()
    }
}

/// Playback-QoE window: the counters of one or more adjacent
/// [`PeriodSample`] rows (and, after a report fold, of every channel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QoeWindow {
    /// First period this window covers.
    pub start_period: u64,
    /// Periods covered.
    pub periods: u64,
    /// Sum over the covered periods of the per-period viewer count.
    pub viewer_periods: u64,
    /// Largest per-period viewer count observed (summed across channels by
    /// the report fold, so cross-channel it is an upper bound on the true
    /// simultaneous count).
    pub viewers_peak: u64,
    /// Playback startups (first frames).
    pub startups: u64,
    /// Stall episodes begun.
    pub stall_begins: u64,
    /// Stall episodes ended.
    pub stall_ends: u64,
    /// Largest per-period count of concurrently stalled peers (upper bound
    /// across channels, like `viewers_peak`).
    pub stalled_peak: u64,
    /// Segments played.
    pub played: u64,
    /// Play opportunities missed.
    pub stalled_segments: u64,
    /// Largest per-period count of switch-countable peers still waiting to
    /// complete the source switch.
    pub switch_waiting_peak: u64,
    /// The waiting count at the window's last period.
    pub switch_waiting_last: u64,
}

impl QoeWindow {
    /// The window of a single raw per-period row.
    pub fn from_sample(sample: &PeriodSample) -> QoeWindow {
        QoeWindow {
            start_period: sample.period,
            periods: 1,
            viewer_periods: sample.viewers,
            viewers_peak: sample.viewers,
            startups: sample.startups,
            stall_begins: sample.stall_begins,
            stall_ends: sample.stall_ends,
            stalled_peak: sample.stalled,
            played: sample.played,
            stalled_segments: sample.stalled_segments,
            switch_waiting_peak: sample.switch_waiting,
            switch_waiting_last: sample.switch_waiting,
        }
    }

    /// Fraction of play opportunities met inside the window (`None` when
    /// nothing was due).
    pub fn continuity(&self) -> Option<f64> {
        let opportunities = self.played + self.stalled_segments;
        (opportunities > 0).then(|| self.played as f64 / opportunities as f64)
    }
}

impl TimelineWindow for QoeWindow {
    fn absorb_next(&mut self, other: &Self) {
        debug_assert_eq!(other.start_period, self.start_period + self.periods);
        self.periods += other.periods;
        self.viewer_periods += other.viewer_periods;
        self.viewers_peak = self.viewers_peak.max(other.viewers_peak);
        self.startups += other.startups;
        self.stall_begins += other.stall_begins;
        self.stall_ends += other.stall_ends;
        self.stalled_peak = self.stalled_peak.max(other.stalled_peak);
        self.played += other.played;
        self.stalled_segments += other.stalled_segments;
        self.switch_waiting_peak = self.switch_waiting_peak.max(other.switch_waiting_peak);
        self.switch_waiting_last = other.switch_waiting_last;
    }

    fn fold_channel(&mut self, other: &Self) {
        debug_assert_eq!(self.start_period, other.start_period);
        debug_assert_eq!(self.periods, other.periods);
        self.viewer_periods += other.viewer_periods;
        self.viewers_peak += other.viewers_peak;
        self.startups += other.startups;
        self.stall_begins += other.stall_begins;
        self.stall_ends += other.stall_ends;
        self.stalled_peak += other.stalled_peak;
        self.played += other.played;
        self.stalled_segments += other.stalled_segments;
        self.switch_waiting_peak += other.switch_waiting_peak;
        self.switch_waiting_last += other.switch_waiting_last;
    }
}

/// Admission-queue depth window: the post-drain queue depth gauges of one
/// or more adjacent period boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthWindow {
    /// First period boundary this window covers.
    pub start_period: u64,
    /// Boundaries covered.
    pub periods: u64,
    /// Deepest post-drain queue inside the window (summed across channels
    /// by the report fold — an upper bound on the true simultaneous total).
    pub peak: u64,
    /// Sum of the per-boundary depths (for mean depth).
    pub sum: u64,
    /// Depth at the window's last boundary.
    pub last: u64,
}

impl DepthWindow {
    /// The window of one period boundary's post-drain depth.
    pub fn from_depth(period: u64, depth: u64) -> DepthWindow {
        DepthWindow {
            start_period: period,
            periods: 1,
            peak: depth,
            sum: depth,
            last: depth,
        }
    }

    /// Mean post-drain depth over the window.
    pub fn mean(&self) -> f64 {
        if self.periods == 0 {
            0.0
        } else {
            self.sum as f64 / self.periods as f64
        }
    }
}

impl TimelineWindow for DepthWindow {
    fn absorb_next(&mut self, other: &Self) {
        debug_assert_eq!(other.start_period, self.start_period + self.periods);
        self.periods += other.periods;
        self.peak = self.peak.max(other.peak);
        self.sum += other.sum;
        self.last = other.last;
    }

    fn fold_channel(&mut self, other: &Self) {
        debug_assert_eq!(self.start_period, other.start_period);
        debug_assert_eq!(self.periods, other.periods);
        self.peak += other.peak;
        self.sum += other.sum;
        self.last += other.last;
    }
}

/// The scalar QoE summary of one run: what two configurations are compared
/// on.  Serialises to an exact text form (`{:?}` prints the shortest f64
/// representation that round-trips) so scorecards can be stored next to a
/// run and diffed later.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scorecard {
    /// Periods the run executed.
    pub periods: u64,
    /// Viewers at report time (all channels).
    pub viewers: u64,
    /// Playback startups (first frames).
    pub startups: u64,
    /// Median startup delay, seconds.
    pub startup_p50_secs: f64,
    /// 95th-percentile startup delay, seconds.
    pub startup_p95_secs: f64,
    /// Mean startup delay, seconds.
    pub startup_mean_secs: f64,
    /// Completed stall episodes.
    pub stall_events: u64,
    /// Stall episodes begun per viewer-hour of watching.
    pub stalls_per_viewer_hour: f64,
    /// Mean completed-stall duration, seconds.
    pub stall_mean_secs: f64,
    /// 95th-percentile completed-stall duration, seconds.
    pub stall_p95_secs: f64,
    /// Run-wide playback continuity (played / play opportunities).
    pub continuity_mean: f64,
    /// Worst per-window continuity over the run's timeline.
    pub continuity_floor: f64,
    /// Most switch-countable peers simultaneously waiting to complete a
    /// source switch.
    pub switch_waiting_peak: u64,
    /// Seconds (run clock) by which the switch-waiting count had drained to
    /// zero, at timeline-window resolution (`None`: no switch observed, or
    /// still draining at the horizon).
    pub switch_drained_secs: Option<f64>,
    /// 95th-percentile cross-channel zap startup delay, seconds.
    pub zap_p95_secs: f64,
    /// Deepest admission queue observed (post-drain, summed across
    /// channels).
    pub admission_peak_queue: u64,
    /// 95th-percentile admission delay, seconds.
    pub admission_p95_delay_secs: f64,
}

/// Quantile helper that maps an empty sketch to 0 instead of NaN.
fn sketch_stats(sketch: &QuantileSketch) -> (f64, f64, f64) {
    if sketch.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        (sketch.quantile(0.5), sketch.quantile(0.95), sketch.mean())
    }
}

impl Scorecard {
    /// Builds the scorecard from a run's merged observations: the
    /// cross-channel startup/stall sketches (unit = `τ`), the folded QoE
    /// and queue-depth timelines, and the zap/admission percentiles the
    /// session report already carries.
    #[allow(clippy::too_many_arguments)]
    pub fn from_observations(
        periods: u64,
        viewers: u64,
        startup: &QuantileSketch,
        stall: &QuantileSketch,
        qoe: &Timeline<QoeWindow>,
        depth: &Timeline<DepthWindow>,
        zap_p95_secs: f64,
        admission_p95_delay_secs: f64,
        tau_secs: f64,
    ) -> Scorecard {
        let (startup_p50_secs, startup_p95_secs, startup_mean_secs) = sketch_stats(startup);
        let (_, stall_p95_secs, stall_mean_secs) = sketch_stats(stall);

        let mut played = 0u64;
        let mut stalled_segments = 0u64;
        let mut startups = 0u64;
        let mut stall_begins = 0u64;
        let mut stall_events = 0u64;
        let mut viewer_periods = 0u64;
        let mut continuity_floor = 1.0f64;
        let mut switch_waiting_peak = 0u64;
        let mut drained_at = None;
        let mut final_waiting = 0u64;
        for window in qoe.windows() {
            played += window.played;
            stalled_segments += window.stalled_segments;
            startups += window.startups;
            stall_begins += window.stall_begins;
            stall_events += window.stall_ends;
            viewer_periods += window.viewer_periods;
            if let Some(c) = window.continuity() {
                continuity_floor = continuity_floor.min(c);
            }
            switch_waiting_peak = switch_waiting_peak.max(window.switch_waiting_peak);
            if window.switch_waiting_peak > 0 {
                drained_at = Some((window.start_period + window.periods) as f64 * tau_secs);
            }
            final_waiting = window.switch_waiting_last;
        }
        let opportunities = played + stalled_segments;
        let continuity_mean = if opportunities > 0 {
            played as f64 / opportunities as f64
        } else {
            1.0
        };
        if qoe.is_empty() {
            continuity_floor = 1.0;
        }
        let viewer_hours = viewer_periods as f64 * tau_secs / 3600.0;
        let stalls_per_viewer_hour = if viewer_hours > 0.0 {
            stall_begins as f64 / viewer_hours
        } else {
            0.0
        };

        let admission_peak_queue = depth.windows().map(|w| w.peak).max().unwrap_or(0);

        Scorecard {
            periods,
            viewers,
            startups,
            startup_p50_secs,
            startup_p95_secs,
            startup_mean_secs,
            stall_events,
            stalls_per_viewer_hour,
            stall_mean_secs,
            stall_p95_secs,
            continuity_mean,
            continuity_floor,
            switch_waiting_peak,
            switch_drained_secs: (final_waiting == 0).then_some(drained_at).flatten(),
            zap_p95_secs,
            admission_peak_queue,
            admission_p95_delay_secs,
        }
    }

    /// The comparison of `self` (the baseline) against `other`.
    pub fn diff(&self, other: &Scorecard) -> ScorecardDelta {
        ScorecardDelta {
            before: *self,
            after: *other,
        }
    }

    /// Serialises the scorecard as `key = value` lines.  f64 values print
    /// through `{:?}` (the shortest representation that parses back to the
    /// identical bits), so [`from_text`](Self::from_text) round-trips
    /// exactly.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (key, value) in self.fields() {
            // Writes into a String are infallible.
            let _ = writeln!(s, "{key} = {value}");
        }
        s
    }

    /// Parses the output of [`to_text`](Self::to_text).
    pub fn from_text(text: &str) -> Result<Scorecard, ScorecardParseError> {
        let mut card = Scorecard::default();
        let mut seen = 0usize;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| ScorecardParseError(format!("malformed line {line:?}")))?;
            card.set_field(key.trim(), value.trim())?;
            seen += 1;
        }
        let expected = Scorecard::default().fields().len();
        if seen != expected {
            return Err(ScorecardParseError(format!(
                "expected {expected} fields, found {seen}"
            )));
        }
        Ok(card)
    }

    /// Every metric as a `(name, printed value)` pair, in display order.
    fn fields(&self) -> Vec<(&'static str, String)> {
        fn opt(v: Option<f64>) -> String {
            v.map_or_else(|| "none".to_string(), |x| format!("{x:?}"))
        }
        vec![
            ("periods", self.periods.to_string()),
            ("viewers", self.viewers.to_string()),
            ("startups", self.startups.to_string()),
            ("startup_p50_secs", format!("{:?}", self.startup_p50_secs)),
            ("startup_p95_secs", format!("{:?}", self.startup_p95_secs)),
            ("startup_mean_secs", format!("{:?}", self.startup_mean_secs)),
            ("stall_events", self.stall_events.to_string()),
            (
                "stalls_per_viewer_hour",
                format!("{:?}", self.stalls_per_viewer_hour),
            ),
            ("stall_mean_secs", format!("{:?}", self.stall_mean_secs)),
            ("stall_p95_secs", format!("{:?}", self.stall_p95_secs)),
            ("continuity_mean", format!("{:?}", self.continuity_mean)),
            ("continuity_floor", format!("{:?}", self.continuity_floor)),
            ("switch_waiting_peak", self.switch_waiting_peak.to_string()),
            ("switch_drained_secs", opt(self.switch_drained_secs)),
            ("zap_p95_secs", format!("{:?}", self.zap_p95_secs)),
            (
                "admission_peak_queue",
                self.admission_peak_queue.to_string(),
            ),
            (
                "admission_p95_delay_secs",
                format!("{:?}", self.admission_p95_delay_secs),
            ),
        ]
    }

    fn set_field(&mut self, key: &str, value: &str) -> Result<(), ScorecardParseError> {
        fn int(v: &str) -> Result<u64, ScorecardParseError> {
            v.parse()
                .map_err(|_| ScorecardParseError(format!("bad integer {v:?}")))
        }
        fn real(v: &str) -> Result<f64, ScorecardParseError> {
            v.parse()
                .map_err(|_| ScorecardParseError(format!("bad float {v:?}")))
        }
        match key {
            "periods" => self.periods = int(value)?,
            "viewers" => self.viewers = int(value)?,
            "startups" => self.startups = int(value)?,
            "startup_p50_secs" => self.startup_p50_secs = real(value)?,
            "startup_p95_secs" => self.startup_p95_secs = real(value)?,
            "startup_mean_secs" => self.startup_mean_secs = real(value)?,
            "stall_events" => self.stall_events = int(value)?,
            "stalls_per_viewer_hour" => self.stalls_per_viewer_hour = real(value)?,
            "stall_mean_secs" => self.stall_mean_secs = real(value)?,
            "stall_p95_secs" => self.stall_p95_secs = real(value)?,
            "continuity_mean" => self.continuity_mean = real(value)?,
            "continuity_floor" => self.continuity_floor = real(value)?,
            "switch_waiting_peak" => self.switch_waiting_peak = int(value)?,
            "switch_drained_secs" => {
                self.switch_drained_secs = if value == "none" {
                    None
                } else {
                    Some(real(value)?)
                }
            }
            "zap_p95_secs" => self.zap_p95_secs = real(value)?,
            "admission_peak_queue" => self.admission_peak_queue = int(value)?,
            "admission_p95_delay_secs" => self.admission_p95_delay_secs = real(value)?,
            other => {
                return Err(ScorecardParseError(format!("unknown field {other:?}")));
            }
        }
        Ok(())
    }
}

impl Default for Scorecard {
    fn default() -> Self {
        Scorecard {
            periods: 0,
            viewers: 0,
            startups: 0,
            startup_p50_secs: 0.0,
            startup_p95_secs: 0.0,
            startup_mean_secs: 0.0,
            stall_events: 0,
            stalls_per_viewer_hour: 0.0,
            stall_mean_secs: 0.0,
            stall_p95_secs: 0.0,
            continuity_mean: 1.0,
            continuity_floor: 1.0,
            switch_waiting_peak: 0,
            switch_drained_secs: None,
            zap_p95_secs: 0.0,
            admission_peak_queue: 0,
            admission_p95_delay_secs: 0.0,
        }
    }
}

impl fmt::Display for Scorecard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (key, value) in self.fields() {
            writeln!(f, "{key:>26}  {value}")?;
        }
        Ok(())
    }
}

/// Parse error of [`Scorecard::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScorecardParseError(String);

impl fmt::Display for ScorecardParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scorecard parse error: {}", self.0)
    }
}

impl std::error::Error for ScorecardParseError {}

/// The comparison of two scorecards (baseline → variant), printable as a
/// metric-by-metric delta table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScorecardDelta {
    /// The baseline scorecard.
    pub before: Scorecard,
    /// The variant scorecard.
    pub after: Scorecard,
}

impl fmt::Display for ScorecardDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>26}  {:>14}  {:>14}  {:>14}",
            "metric", "before", "after", "delta"
        )?;
        for ((key, before), (_, after)) in self.before.fields().iter().zip(self.after.fields()) {
            let delta = match (before.parse::<f64>(), after.parse::<f64>()) {
                (Ok(b), Ok(a)) => {
                    let d = a - b;
                    if d == 0.0 {
                        "=".to_string()
                    } else {
                        format!("{d:+.4}")
                    }
                }
                _ if *before == after => "=".to_string(),
                _ => "~".to_string(),
            };
            writeln!(f, "{key:>26}  {before:>14}  {after:>14}  {delta:>14}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(period: u64, played: u64, stalled: u64) -> QoeWindow {
        QoeWindow::from_sample(&PeriodSample {
            period,
            viewers: 10,
            started: 10,
            startups: u64::from(period == 1) * 10,
            stall_begins: u64::from(stalled > 0),
            stall_ends: 0,
            stalled: u64::from(stalled > 0),
            played,
            stalled_segments: stalled,
            switch_waiting: 0,
        })
    }

    #[test]
    fn timeline_memory_is_bounded_for_any_run_length() {
        let mut t = Timeline::new(64);
        let reserved = t.slots.capacity();
        for period in 1..=120_000u64 {
            t.push(sample(period, 9, 1));
        }
        assert!(t.slots().len() <= 64);
        assert_eq!(
            t.slots.capacity(),
            reserved,
            "decimation must not grow the ring"
        );
        assert_eq!(t.samples(), 120_000);
        assert!(t.stride().is_power_of_two());
        assert!(t.stride() >= 120_000 / 64);
        // No sample is lost to decimation: the counters are conserved.
        let played: u64 = t.windows().map(|w| w.played).sum();
        let periods: u64 = t.windows().map(|w| w.periods).sum();
        assert_eq!(played, 120_000 * 9);
        assert_eq!(periods, 120_000);
    }

    #[test]
    fn decimation_is_deterministic() {
        let build = || {
            let mut t = Timeline::new(8);
            for period in 1..=1000u64 {
                t.push(sample(period, period % 7, period % 3));
            }
            t
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn decimation_merges_adjacent_windows_exactly() {
        let mut t = Timeline::new(4);
        for period in 1..=4u64 {
            t.push(sample(period, 10 + period, 0));
        }
        // Capacity hit at 4 pushes: one decimation to 2 slots of stride 2.
        assert_eq!(t.stride(), 2);
        assert_eq!(t.slots().len(), 2);
        let first = t.slots()[0];
        assert_eq!(first.start_period, 1);
        assert_eq!(first.periods, 2);
        assert_eq!(first.played, 11 + 12);
        assert_eq!(first.viewer_periods, 20);
        assert_eq!(first.viewers_peak, 10);
        let second = t.slots()[1];
        assert_eq!(second.start_period, 3);
        assert_eq!(second.played, 13 + 14);
        // The fifth push lands in a fresh pending window of stride 2.
        t.push(sample(5, 1, 0));
        assert_eq!(t.slots().len(), 2);
        assert_eq!(t.pending().unwrap().periods, 1);
    }

    #[test]
    fn channel_fold_sums_counters_and_peaks() {
        let build = |scale: u64| {
            let mut t = Timeline::new(4);
            for period in 1..=6u64 {
                t.push(sample(period, scale * period, scale));
            }
            t
        };
        let mut a = build(1);
        let b = build(2);
        a.fold_channel(&b);
        let played: u64 = a.windows().map(|w| w.played).sum();
        assert_eq!(played, (1..=6).sum::<u64>() * 3);
        assert_eq!(a.windows().next().unwrap().viewers_peak, 20);
    }

    #[test]
    #[should_panic(expected = "sample-count mismatch")]
    fn folding_misaligned_timelines_panics() {
        let mut a = Timeline::new(4);
        a.push(sample(1, 1, 0));
        let b = Timeline::new(4);
        a.fold_channel(&b);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_capacity_is_rejected() {
        let _ = Timeline::<QoeWindow>::new(5);
    }

    #[test]
    fn depth_windows_track_peak_mean_and_last() {
        let mut t = Timeline::new(4);
        for (period, depth) in [(0u64, 0u64), (1, 40), (2, 25), (3, 10), (4, 0)] {
            t.push(DepthWindow::from_depth(period, depth));
        }
        let peak = t.windows().map(|w| w.peak).max().unwrap();
        assert_eq!(peak, 40);
        let total: u64 = t.windows().map(|w| w.sum).sum();
        assert_eq!(total, 75);
        assert_eq!(t.windows().last().unwrap().last, 0);
    }

    #[test]
    fn scorecard_text_round_trips_exactly() {
        let card = Scorecard {
            periods: 55,
            viewers: 412,
            startups: 399,
            startup_p50_secs: 3.5,
            startup_p95_secs: 10.500000000000002,
            startup_mean_secs: 4.033_333_333_333_333,
            stall_events: 17,
            stalls_per_viewer_hour: 0.123_456_789,
            stall_mean_secs: 7.0,
            stall_p95_secs: 14.0,
            continuity_mean: 0.987_654_321,
            continuity_floor: 0.75,
            switch_waiting_peak: 31,
            switch_drained_secs: Some(38.5),
            zap_p95_secs: 12.25,
            admission_peak_queue: 44,
            admission_p95_delay_secs: 3.5,
        };
        let parsed = Scorecard::from_text(&card.to_text()).unwrap();
        assert_eq!(parsed, card);
        let none_case = Scorecard {
            switch_drained_secs: None,
            ..card
        };
        assert_eq!(
            Scorecard::from_text(&none_case.to_text()).unwrap(),
            none_case
        );
    }

    #[test]
    fn scorecard_parse_rejects_garbage() {
        assert!(Scorecard::from_text("nonsense").is_err());
        assert!(Scorecard::from_text("periods = twelve").is_err());
        // A truncated scorecard (missing fields) is rejected too.
        assert!(Scorecard::from_text("periods = 5").is_err());
    }

    #[test]
    fn diff_renders_every_metric_with_deltas() {
        let base = Scorecard {
            periods: 10,
            continuity_mean: 0.9,
            ..Scorecard::default()
        };
        let variant = Scorecard {
            periods: 10,
            continuity_mean: 0.95,
            switch_drained_secs: Some(12.0),
            ..Scorecard::default()
        };
        let table = base.diff(&variant).to_string();
        assert!(table.contains("continuity_mean"));
        assert!(table.contains("+0.0500"));
        assert!(table.contains("periods"));
        // Unchanged numeric rows collapse to "=".
        assert!(table.contains('='));
    }

    #[test]
    fn scorecard_from_observations_summarises_the_timeline() {
        let tau = 3.5;
        let mut startup = QuantileSketch::new(tau);
        startup.record(tau);
        startup.record(2.0 * tau);
        let stall = QuantileSketch::new(tau);
        let mut qoe = Timeline::new(4);
        let mut with_switch = |period: u64, waiting: u64, played: u64, stalled: u64| {
            let mut w = sample(period, played, stalled);
            w.switch_waiting_peak = waiting;
            w.switch_waiting_last = waiting;
            qoe.push(w);
        };
        with_switch(1, 8, 10, 0);
        with_switch(2, 3, 6, 4);
        with_switch(3, 0, 10, 0);
        let mut depth = Timeline::new(4);
        for (p, d) in [(1u64, 5u64), (2, 2), (3, 0)] {
            depth.push(DepthWindow::from_depth(p, d));
        }
        let card =
            Scorecard::from_observations(3, 10, &startup, &stall, &qoe, &depth, 7.0, 0.0, tau);
        assert_eq!(card.startups, 10);
        // Two samples: rank rounding answers the upper one for p50.
        assert_eq!(card.startup_p50_secs, 2.0 * tau);
        assert_eq!(card.switch_waiting_peak, 8);
        // Waiting last seen >0 in period 2; drained by the end of that window.
        assert_eq!(card.switch_drained_secs, Some(3.0 * tau));
        assert_eq!(card.admission_peak_queue, 5);
        assert!((card.continuity_mean - 26.0 / 30.0).abs() < 1e-12);
        assert!((card.continuity_floor - 0.6).abs() < 1e-12);
        assert_eq!(card.stall_events, 0);
        assert!(card.stalls_per_viewer_hour > 0.0);
    }
}
