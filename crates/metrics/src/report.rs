//! Plain-text and CSV tables for the figure harness.

use serde::{Deserialize, Serialize};

/// A simple column-aligned table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.  Missing cells are padded with empty strings, extra
    /// cells are kept (and widen the table).
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Convenience for rows of mixed displayable values.
    pub fn push_display_row(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>width$}  "));
            }
            line.trim_end().to_string()
        };

        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with a fixed number of decimals (helper used by the figure
/// harness so tables stay aligned).
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("Figure 7", &["nodes", "normal", "fast", "reduction"]);
        t.push_row(vec![
            "100".into(),
            "13.2".into(),
            "10.4".into(),
            "0.21".into(),
        ]);
        t.push_row(vec![
            "8000".into(),
            "33.0".into(),
            "23.1".into(),
            "0.30".into(),
        ]);
        t
    }

    #[test]
    fn text_rendering_is_aligned() {
        let text = sample_table().to_text();
        assert!(text.starts_with("# Figure 7\n"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "title, header, separator and two rows");
        assert!(lines[1].contains("nodes"));
        assert!(lines[4].contains("8000"));
        // All data lines have the same width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_rendering_and_escaping() {
        let mut t = sample_table();
        t.push_row(vec!["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "nodes,normal,fast,reduction");
        assert_eq!(lines[1], "100,13.2,10.4,0.21");
        assert_eq!(lines[3], "\"has,comma\",\"has\"\"quote\"");
    }

    #[test]
    fn bookkeeping_and_display_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        assert!(t.is_empty());
        t.push_display_row(&[&1, &2.5]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "t");
        assert!(t.to_text().contains("2.5"));
    }

    #[test]
    fn float_formatting_helper() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(0.5, 3), "0.500");
    }
}
