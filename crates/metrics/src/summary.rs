//! Descriptive statistics over a sample of `f64` values.

use serde::{Deserialize, Serialize};

/// Summary statistics of a (possibly empty) sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Smallest value (0 for an empty sample).
    pub min: f64,
    /// Largest value (0 for an empty sample).
    pub max: f64,
    /// Population standard deviation (0 for an empty sample).
    pub stddev: f64,
}

impl Summary {
    /// Computes the summary of `values`, ignoring non-finite entries.
    pub fn of(values: &[f64]) -> Summary {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                stddev: 0.0,
            };
        }
        let count = finite.len();
        let mean = finite.iter().sum::<f64>() / count as f64;
        let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let variance = finite.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            min,
            max,
            stddev: variance.sqrt(),
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of `values` using nearest-rank on the
    /// sorted finite sample; 0 for an empty sample.
    pub fn quantile(values: &[f64], q: f64) -> f64 {
        let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return 0.0;
        }
        finite.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let q = q.clamp(0.0, 1.0);
        let rank = ((finite.len() as f64 - 1.0) * q).round() as usize;
        finite[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarises_a_simple_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.stddev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_nonfinite_samples() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);

        let s = Summary::of(&[f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn quantiles() {
        let values: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(Summary::quantile(&values, 0.0), 1.0);
        assert_eq!(Summary::quantile(&values, 1.0), 100.0);
        let median = Summary::quantile(&values, 0.5);
        assert!((median - 50.5).abs() <= 0.5, "median {median}");
        assert_eq!(Summary::quantile(&[], 0.5), 0.0);
        // Out-of-range quantiles clamp.
        assert_eq!(Summary::quantile(&values, 2.0), 100.0);
        assert_eq!(Summary::quantile(&values, -1.0), 1.0);
    }

    proptest::proptest! {
        /// The mean always lies between min and max, and stddev is
        /// non-negative.
        #[test]
        fn prop_mean_within_bounds(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::of(&values);
            proptest::prop_assert!(s.min <= s.mean + 1e-9);
            proptest::prop_assert!(s.mean <= s.max + 1e-9);
            proptest::prop_assert!(s.stddev >= 0.0);
            proptest::prop_assert_eq!(s.count, values.len());
        }
    }
}
