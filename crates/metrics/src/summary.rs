//! Descriptive statistics over a sample of `f64` values.

use serde::{Deserialize, Serialize};

/// Summary statistics of a (possibly empty) sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Smallest value (0 for an empty sample).
    pub min: f64,
    /// Largest value (0 for an empty sample).
    pub max: f64,
    /// Population standard deviation (0 for an empty sample).
    pub stddev: f64,
}

impl Summary {
    /// Computes the summary of `values`, ignoring non-finite entries.
    ///
    /// Two streaming passes (moments, then central moments) — no
    /// intermediate sample copy, zero heap allocation.  The accumulation
    /// order matches the historical collect-then-fold implementation
    /// operation for operation, so results are bitwise identical.
    pub fn of(values: &[f64]) -> Summary {
        let mut count = 0usize;
        let mut sum = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            if v.is_finite() {
                count += 1;
                sum += v;
                min = min.min(v);
                max = max.max(v);
            }
        }
        if count == 0 {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                stddev: 0.0,
            };
        }
        let mean = sum / count as f64;
        let mut squared = 0.0f64;
        for &v in values {
            if v.is_finite() {
                squared += (v - mean).powi(2);
            }
        }
        let variance = squared / count as f64;
        Summary {
            count,
            mean,
            min,
            max,
            stddev: variance.sqrt(),
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of `values` using nearest-rank on the
    /// sorted finite sample; 0 for an empty sample.
    ///
    /// Sorts a copy of the sample per call; callers that need more than one
    /// quantile of the same sample should build a [`SortedSample`] once (or
    /// stream into a [`QuantileSketch`](crate::sketch::QuantileSketch)) —
    /// both answer repeated quantile queries without allocating.
    pub fn quantile(values: &[f64], q: f64) -> f64 {
        SortedSample::from_values(values).quantile(q)
    }
}

/// A sample sorted **once** at construction; every subsequent
/// [`quantile`](SortedSample::quantile) call is an O(1) lookup with zero
/// heap allocation (the fix for the clone-and-sort-per-call percentile
/// path, asserted by the counting-allocator regression test in
/// `fss-bench`).
#[derive(Debug, Clone, PartialEq)]
pub struct SortedSample {
    values: Vec<f64>,
}

impl SortedSample {
    /// Filters the finite entries of `values` and sorts them ascending —
    /// the only allocation and the only sort this sample will ever do.
    pub fn from_values(values: &[f64]) -> SortedSample {
        let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        finite.sort_by(f64::total_cmp);
        SortedSample { values: finite }
    }

    /// Number of (finite) samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1, clamped) by nearest rank; 0 for an
    /// empty sample.  Never allocates.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.values.len() as f64 - 1.0) * q).round() as usize;
        self.values[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarises_a_simple_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.stddev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_nonfinite_samples() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);

        let s = Summary::of(&[f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn quantiles() {
        let values: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(Summary::quantile(&values, 0.0), 1.0);
        assert_eq!(Summary::quantile(&values, 1.0), 100.0);
        let median = Summary::quantile(&values, 0.5);
        assert!((median - 50.5).abs() <= 0.5, "median {median}");
        assert_eq!(Summary::quantile(&[], 0.5), 0.0);
        // Out-of-range quantiles clamp.
        assert_eq!(Summary::quantile(&values, 2.0), 100.0);
        assert_eq!(Summary::quantile(&values, -1.0), 1.0);
    }

    #[test]
    fn sorted_sample_answers_repeated_quantiles() {
        let values: Vec<f64> = (1..=100).rev().map(|v| v as f64).collect();
        let sorted = SortedSample::from_values(&values);
        assert_eq!(sorted.len(), 100);
        assert!(!sorted.is_empty());
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(sorted.quantile(q), Summary::quantile(&values, q));
        }
        let empty = SortedSample::from_values(&[f64::NAN]);
        assert!(empty.is_empty());
        assert_eq!(empty.quantile(0.5), 0.0);
    }

    proptest::proptest! {
        /// The mean always lies between min and max, and stddev is
        /// non-negative.
        #[test]
        fn prop_mean_within_bounds(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::of(&values);
            proptest::prop_assert!(s.min <= s.mean + 1e-9);
            proptest::prop_assert!(s.mean <= s.max + 1e-9);
            proptest::prop_assert!(s.stddev >= 0.0);
            proptest::prop_assert_eq!(s.count, values.len());
        }
    }
}
