//! Memory-footprint aggregation across systems.
//!
//! `fss-gossip` meters each system's per-peer protocol state as a raw
//! [`MemUsage`] (integer byte counts, surfaced in `SystemReport::mem`);
//! [`MemSummary`] condenses one or many of those — e.g. every channel of a
//! multi-channel session — into the numbers experiments and benches record:
//! total active peers, average/maximum bytes per peer, the ring / window /
//! sequence-array breakdown, and the saving versus the pre-compaction
//! layout.  The ROADMAP's million-user north star budgets memory *per
//! viewer*, so bytes/peer is reported alongside throughput in
//! `BENCH_period.json` and guarded by `crates/bench/tests/mem_budget.rs`.

use fss_gossip::MemUsage;
use serde::Serialize;

/// Aggregated per-peer memory footprint over one or more streaming systems.
///
/// Deterministic: built by summing the systems' integer [`MemUsage`]
/// counters in order, so reports containing it stay byte-comparable across
/// worker counts and stepping modes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MemSummary {
    /// Number of systems (channels) aggregated.
    pub systems: usize,
    /// Active peers across all systems.
    pub active_peers: usize,
    /// Allocated peer slots across all systems (including departed peers).
    pub peer_slots: usize,
    /// Total protocol-state bytes of the active peers.
    pub peer_state_bytes: u64,
    /// Arrival-ring share of `peer_state_bytes`.
    pub ring_bytes: u64,
    /// Availability-window share of `peer_state_bytes`.
    pub window_bytes: u64,
    /// Sequence-array share of `peer_state_bytes`.
    pub seq_bytes: u64,
    /// The single largest peer footprint observed.
    pub max_peer_bytes: u64,
    /// What the same state would cost in the pre-compaction layout
    /// (u64 ring entries, u32 seqs).
    pub legacy_peer_state_bytes: u64,
    /// Average bytes per active peer (0 when no peers).
    pub avg_bytes_per_peer: f64,
    /// Fractional saving versus the pre-compaction layout on the same
    /// state (`1 − compact/legacy`; 0 when empty).
    pub reduction_vs_legacy: f64,
}

impl MemSummary {
    /// Aggregates the usages of several systems (channels).
    pub fn from_usages(usages: &[MemUsage]) -> MemSummary {
        let mut total = MemUsage::default();
        for usage in usages {
            total.peer_slots += usage.peer_slots;
            total.active_peers += usage.active_peers;
            total.peer_bytes += usage.peer_bytes;
            total.ring_bytes += usage.ring_bytes;
            total.window_bytes += usage.window_bytes;
            total.seq_bytes += usage.seq_bytes;
            total.max_peer_bytes = total.max_peer_bytes.max(usage.max_peer_bytes);
            total.legacy_peer_bytes += usage.legacy_peer_bytes;
        }
        MemSummary {
            systems: usages.len(),
            active_peers: total.active_peers,
            peer_slots: total.peer_slots,
            peer_state_bytes: total.peer_bytes,
            ring_bytes: total.ring_bytes,
            window_bytes: total.window_bytes,
            seq_bytes: total.seq_bytes,
            max_peer_bytes: total.max_peer_bytes,
            legacy_peer_state_bytes: total.legacy_peer_bytes,
            avg_bytes_per_peer: total.bytes_per_peer(),
            reduction_vs_legacy: total.reduction_vs_legacy(),
        }
    }

    /// The summary of a single system.
    pub fn from_usage(usage: MemUsage) -> MemSummary {
        Self::from_usages(&[usage])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_gossip::BufferMemBreakdown;

    fn usage(peers: usize, ring: usize, window: usize, seq: usize) -> MemUsage {
        let mut usage = MemUsage {
            peer_slots: peers,
            ..MemUsage::default()
        };
        for _ in 0..peers {
            usage.add_peer(
                64,
                BufferMemBreakdown {
                    ring_bytes: ring,
                    window_bytes: window,
                    seq_bytes: seq,
                },
            );
        }
        usage
    }

    #[test]
    fn summary_aggregates_channels() {
        let a = usage(10, 400, 80, 200);
        let b = usage(30, 400, 80, 200);
        let summary = MemSummary::from_usages(&[a, b]);
        assert_eq!(summary.systems, 2);
        assert_eq!(summary.active_peers, 40);
        assert_eq!(summary.peer_slots, 40);
        assert_eq!(summary.peer_state_bytes, 40 * (64 + 680));
        assert_eq!(summary.ring_bytes, 40 * 400);
        assert_eq!(summary.max_peer_bytes, 64 + 680);
        assert_eq!(summary.legacy_peer_state_bytes, 40 * 1344);
        assert!((summary.avg_bytes_per_peer - 744.0).abs() < 1e-9);
        // Legacy doubles ring and seqs: 64 + 800 + 80 + 400 = 1344.
        assert!((summary.reduction_vs_legacy - (1.0 - 744.0 / 1344.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let summary = MemSummary::from_usages(&[]);
        assert_eq!(summary.systems, 0);
        assert_eq!(summary.active_peers, 0);
        assert_eq!(summary.avg_bytes_per_peer, 0.0);
        assert_eq!(summary.reduction_vs_legacy, 0.0);
    }

    #[test]
    fn single_usage_matches_slice_of_one() {
        let u = usage(5, 100, 50, 60);
        assert_eq!(MemSummary::from_usage(u), MemSummary::from_usages(&[u]));
    }
}
