//! Mergeable fixed-size quantile sketches for streaming metric aggregation.
//!
//! Per-event metric vectors (`Vec<f64>` of zap latencies, admission delays,
//! …) grow O(events) and force report-time sorts; at the ROADMAP's
//! million-peer scale they dominate report memory.  A [`QuantileSketch`] is
//! the O(1)-memory replacement: a fixed array of counting buckets that every
//! producer (a channel, a shard) folds its observations into locally, plus a
//! deterministic merge so partial sketches combine at report time in any
//! grouping.
//!
//! # Determinism and exactness
//!
//! The sketch state is *only* `(unit, bucket counts, count, min, max)` — no
//! running floating-point sum.  Mean, sum and quantiles are derived from the
//! buckets in a fixed ascending walk at query time, so
//! [`merge_from`](QuantileSketch::merge_from) is an elementwise `u64` add
//! plus `f64::min`/`f64::max` — exactly associative and commutative.  Fold
//! left, fold right or tree-merge: the merged sketch is bitwise identical
//! (asserted by the property tests below).
//!
//! Samples that land on the sketch's *tick grid* (integer multiples of
//! `unit`, up to [`LINEAR_BUCKETS`] ticks) are represented **exactly**: the
//! derived mean, min, max and every nearest-rank quantile equal the values a
//! sort-the-whole-sample path would produce, bit for bit.  The
//! period-synchronous simulator emits exactly such values (every latency and
//! delay is `k · τ`), which is what lets the pinned golden-report digests
//! survive the switch from vectors to sketches.  Off-grid samples in the
//! linear range are quantized to the nearest tick (absolute error ≤
//! `unit / 2`); samples beyond the linear range fall into geometric overflow
//! buckets with relative error ≤ 2^(1/8) − 1 ≈ 9 % (mean/quantile
//! contributions; `min`/`max` stay exact always).

use fss_gossip::MemoryFootprint;

/// Number of linear buckets: tick `k` (0 ≤ k < `LINEAR_BUCKETS`) represents
/// the value `k · unit` exactly.
pub const LINEAR_BUCKETS: usize = 1024;

/// Number of geometric overflow buckets past the linear range; bucket `b`
/// covers `[LINEAR_BUCKETS · unit · 2^(b/4), … · 2^((b+1)/4))` — 64 buckets
/// span a further 2^16× dynamic range.
pub const OVERFLOW_BUCKETS: usize = 64;

/// Overflow buckets per octave (ratio 2^(1/4) per bucket).
const BUCKETS_PER_OCTAVE: f64 = 4.0;

/// A fixed-size, order-independently mergeable quantile sketch.
///
/// See the [module docs](self) for the exactness and determinism contract.
#[derive(Clone, PartialEq)]
pub struct QuantileSketch {
    unit: f64,
    count: u64,
    min: f64,
    max: f64,
    linear: Box<[u64]>,
    overflow: Box<[u64]>,
}

impl QuantileSketch {
    /// Creates an empty sketch whose tick grid is integer multiples of
    /// `unit` (for the simulator: the period length `τ`, since every
    /// recorded duration is a whole number of periods).
    ///
    /// # Panics
    /// Panics unless `unit` is finite and positive.
    pub fn new(unit: f64) -> QuantileSketch {
        assert!(
            unit.is_finite() && unit > 0.0,
            "sketch unit {unit} must be finite and positive"
        );
        QuantileSketch {
            unit,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            linear: vec![0; LINEAR_BUCKETS].into_boxed_slice(),
            overflow: vec![0; OVERFLOW_BUCKETS].into_boxed_slice(),
        }
    }

    /// The tick-grid unit.
    pub fn unit(&self) -> f64 {
        self.unit
    }

    /// Number of recorded (finite) samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (exact; 0 when empty, matching
    /// [`Summary::of`](crate::summary::Summary::of) on an empty sample).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (exact; 0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Records one sample.  Non-finite samples are ignored, mirroring the
    /// filtering of [`Summary::of`](crate::summary::Summary::of).  Never
    /// allocates.
    #[inline]
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let ticks = value / self.unit;
        // Nearest-tick index; `.round()` is exact for on-grid samples even
        // when `value / unit` itself rounds (e.g. 0.3 / 0.1).
        let idx = ticks.round();
        if idx < LINEAR_BUCKETS as f64 {
            // Negative samples clamp into tick 0; `min` keeps the true value.
            self.linear[idx.max(0.0) as usize] += 1;
        } else {
            let octaves = (ticks / LINEAR_BUCKETS as f64).log2();
            let b = (octaves * BUCKETS_PER_OCTAVE).floor();
            let b = (b.max(0.0) as usize).min(OVERFLOW_BUCKETS - 1);
            self.overflow[b] += 1;
        }
    }

    /// Folds `other` into `self`.  Elementwise count addition plus
    /// `min`/`max` — exactly associative and commutative, so any merge
    /// order yields a bitwise-identical sketch.  Never allocates.
    ///
    /// # Panics
    /// Panics if the sketches were built with different units.
    pub fn merge_from(&mut self, other: &QuantileSketch) {
        assert!(
            self.unit == other.unit,
            "cannot merge sketches with units {} and {}",
            self.unit,
            other.unit
        );
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.linear.iter_mut().zip(other.linear.iter()) {
            *a += *b;
        }
        for (a, b) in self.overflow.iter_mut().zip(other.overflow.iter()) {
            *a += *b;
        }
    }

    /// Resets the sketch to empty without releasing its buckets.
    pub fn clear(&mut self) {
        self.count = 0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        self.linear.fill(0);
        self.overflow.fill(0);
    }

    /// The representative value of overflow bucket `b` (geometric midpoint).
    fn overflow_representative(&self, b: usize) -> f64 {
        let octaves = (b as f64 + 0.5) / BUCKETS_PER_OCTAVE;
        LINEAR_BUCKETS as f64 * self.unit * octaves.exp2()
    }

    /// Sum of the recorded samples as represented by the buckets, derived in
    /// one fixed ascending walk (exact for on-grid samples in the linear
    /// range).  Never allocates.
    pub fn sum(&self) -> f64 {
        let mut sum = 0.0;
        for (k, &n) in self.linear.iter().enumerate() {
            if n != 0 {
                sum += n as f64 * (k as f64 * self.unit);
            }
        }
        for (b, &n) in self.overflow.iter().enumerate() {
            if n != 0 {
                sum += n as f64 * self.overflow_representative(b);
            }
        }
        sum
    }

    /// Mean of the recorded samples (0 when empty).  Never allocates.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1, clamped) by nearest rank — the same
    /// `rank = round((n − 1) · q)` rule as
    /// [`Summary::quantile`](crate::summary::Summary::quantile) — walked
    /// over the cumulative bucket counts.  0 when empty.  Never allocates.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        // The extreme ranks are tracked exactly — answer them exactly.
        if rank == 0 {
            return self.min;
        }
        if rank == self.count - 1 {
            return self.max;
        }
        let mut cum = 0u64;
        for (k, &n) in self.linear.iter().enumerate() {
            cum += n;
            if cum > rank {
                return (k as f64 * self.unit).clamp(self.min, self.max);
            }
        }
        for (b, &n) in self.overflow.iter().enumerate() {
            cum += n;
            if cum > rank {
                return self.overflow_representative(b).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

impl std::fmt::Debug for QuantileSketch {
    /// Compact: the 1088 raw buckets are elided; the derived surface is
    /// what reports (and the golden digests over them) care about.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantileSketch")
            .field("unit", &self.unit)
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max())
            .field("mean", &self.mean())
            .finish()
    }
}

impl MemoryFootprint for QuantileSketch {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of_val::<[u64]>(&self.linear)
            + std::mem::size_of_val::<[u64]>(&self.overflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;

    fn sketch_of(values: &[f64], unit: f64) -> QuantileSketch {
        let mut s = QuantileSketch::new(unit);
        for &v in values {
            s.record(v);
        }
        s
    }

    #[test]
    fn empty_sketch_matches_empty_summary_semantics() {
        let s = QuantileSketch::new(1.0);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.quantile(0.95), 0.0);
    }

    #[test]
    fn on_grid_samples_are_exact_bit_for_bit() {
        let values: Vec<f64> = [7u64, 3, 3, 12, 0, 55, 102, 7, 998]
            .iter()
            .map(|&k| k as f64)
            .collect();
        let s = sketch_of(&values, 1.0);
        let legacy = Summary::of(&values);
        assert_eq!(s.count() as usize, legacy.count);
        assert_eq!(s.mean(), legacy.mean, "mean must match bitwise");
        assert_eq!(s.min(), legacy.min);
        assert_eq!(s.max(), legacy.max);
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 1.0] {
            assert_eq!(
                s.quantile(q),
                Summary::quantile(&values, q),
                "quantile {q} must match bitwise"
            );
        }
    }

    #[test]
    fn fractional_unit_grid_is_exact() {
        // τ = 0.5: every sample is k · 0.5 — still dyadic, still exact.
        let values: Vec<f64> = (0..200).map(|k| k as f64 * 0.5).collect();
        let s = sketch_of(&values, 0.5);
        let legacy = Summary::of(&values);
        assert_eq!(s.mean(), legacy.mean);
        assert_eq!(s.quantile(0.95), Summary::quantile(&values, 0.95));
        assert_eq!(s.max(), legacy.max);
    }

    #[test]
    fn nonfinite_samples_are_ignored() {
        let s = sketch_of(&[f64::NAN, 3.0, f64::INFINITY, f64::NEG_INFINITY], 1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn off_grid_samples_quantize_within_half_a_unit() {
        let s = sketch_of(&[1.3, 2.7, 4.1], 1.0);
        assert_eq!(s.count(), 3);
        assert!((s.quantile(0.5) - 2.7).abs() <= 0.5 + 1e-12);
        assert!((s.mean() - (1.3 + 2.7 + 4.1) / 3.0).abs() <= 0.5 + 1e-12);
        // min/max stay exact regardless of quantization.
        assert_eq!(s.min(), 1.3);
        assert_eq!(s.max(), 4.1);
    }

    #[test]
    fn overflow_range_keeps_bounded_relative_error() {
        // Values far past the linear range (1024 ticks).
        let values = [5_000.0, 20_000.0, 1_000_000.0];
        let s = sketch_of(&values, 1.0);
        assert_eq!(s.max(), 1_000_000.0, "max is exact even in overflow");
        assert_eq!(s.min(), 5_000.0);
        let median = s.quantile(0.5);
        assert!(
            (median - 20_000.0).abs() / 20_000.0 <= 0.10,
            "overflow relative error bound: got {median}"
        );
    }

    #[test]
    fn negative_samples_clamp_into_the_first_bucket_with_exact_min() {
        let s = sketch_of(&[-3.0, 1.0, 2.0], 1.0);
        assert_eq!(s.min(), -3.0);
        assert_eq!(s.quantile(0.0), -3.0, "quantiles clamp to the true min");
    }

    #[test]
    fn merge_is_fold_order_independent() {
        let parts: Vec<QuantileSketch> = (0..8)
            .map(|i| {
                let values: Vec<f64> = (0..50).map(|k| ((k * 7 + i * 13) % 300) as f64).collect();
                sketch_of(&values, 1.0)
            })
            .collect();

        // Fold left.
        let mut left = QuantileSketch::new(1.0);
        for p in &parts {
            left.merge_from(p);
        }
        // Fold right.
        let mut right = QuantileSketch::new(1.0);
        for p in parts.iter().rev() {
            right.merge_from(p);
        }
        // Tree merge.
        let mut layer = parts.clone();
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                let mut merged = pair[0].clone();
                if let Some(second) = pair.get(1) {
                    merged.merge_from(second);
                }
                next.push(merged);
            }
            layer = next;
        }
        let tree = layer.pop().unwrap();

        assert!(left == right, "fold-left and fold-right must be identical");
        assert!(left == tree, "fold-left and tree-merge must be identical");
        assert_eq!(left.mean(), tree.mean());
        assert_eq!(left.quantile(0.95), tree.quantile(0.95));
    }

    #[test]
    fn merged_sketch_equals_single_sketch_over_the_union() {
        let a: Vec<f64> = (0..100).map(|k| (k % 37) as f64).collect();
        let b: Vec<f64> = (0..80).map(|k| (k % 53) as f64).collect();
        let mut merged = sketch_of(&a, 1.0);
        merged.merge_from(&sketch_of(&b, 1.0));
        let mut union = a.clone();
        union.extend_from_slice(&b);
        let whole = sketch_of(&union, 1.0);
        assert!(merged == whole);
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn merging_mismatched_units_panics() {
        let mut a = QuantileSketch::new(1.0);
        a.merge_from(&QuantileSketch::new(0.5));
    }

    #[test]
    fn clear_resets_without_reallocating() {
        let mut s = sketch_of(&[1.0, 2.0, 3.0], 1.0);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0.0);
        s.record(7.0);
        assert_eq!(s.mean(), 7.0);
    }

    #[test]
    fn heap_bytes_are_fixed() {
        let a = QuantileSketch::new(1.0);
        let mut b = QuantileSketch::new(1.0);
        for k in 0..10_000 {
            b.record((k % 700) as f64);
        }
        assert_eq!(a.heap_bytes(), b.heap_bytes(), "size is sample-independent");
        assert_eq!(a.heap_bytes(), (LINEAR_BUCKETS + OVERFLOW_BUCKETS) * 8);
    }

    proptest::proptest! {
        /// Any partition of any on-grid sample merged in any grouping equals
        /// the sketch of the whole sample, and matches the sort-based path.
        #[test]
        fn prop_merge_matches_whole_and_legacy(
            ticks in proptest::collection::vec(0u64..1024, 1..300),
            split in 1usize..10,
        ) {
            let values: Vec<f64> = ticks.iter().map(|&k| k as f64).collect();
            let whole = sketch_of(&values, 1.0);

            let mut merged = QuantileSketch::new(1.0);
            for chunk in values.chunks(split) {
                merged.merge_from(&sketch_of(chunk, 1.0));
            }
            proptest::prop_assert!(merged == whole);

            let legacy = Summary::of(&values);
            proptest::prop_assert_eq!(whole.mean(), legacy.mean);
            proptest::prop_assert_eq!(whole.max(), legacy.max);
            proptest::prop_assert_eq!(whole.quantile(0.95), Summary::quantile(&values, 0.95));
        }
    }
}
