//! Switch-time metrics (§5.2 metrics 1 and 2 plus the supplementary ones).

use crate::sketch::QuantileSketch;
use crate::summary::Summary;
use fss_gossip::{SwitchRecord, SwitchStats};
use serde::{Deserialize, Serialize};

/// Aggregated switch metrics over all countable nodes of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchSummary {
    /// Nodes that were present at the switch and did not depart.
    pub countable_nodes: usize,
    /// Nodes that completed the switch (finished `S1` and prepared `S2`).
    pub completed_nodes: usize,
    /// Average time to finish the playback of the old source (`T1'`,
    /// supplementary metric 3).
    pub avg_finish_old_secs: f64,
    /// Average time to prepare the new source — the paper's **average switch
    /// time** (metric 1).
    pub avg_prepare_new_secs: f64,
    /// Average time at which playback of the new source actually started.
    pub avg_start_new_secs: f64,
    /// Worst-case (last node) preparing time.
    pub max_prepare_new_secs: f64,
    /// Worst-case (last node) finishing time of the old source.
    pub max_finish_old_secs: f64,
    /// Average undelivered old-source backlog at switch time (`Q0`).
    pub avg_q0: f64,
}

impl SwitchSummary {
    /// Builds the summary from per-node records.  Nodes that never completed
    /// a milestone simply do not contribute to that milestone's average.
    pub fn from_records(records: &[SwitchRecord]) -> SwitchSummary {
        let countable: Vec<&SwitchRecord> = records.iter().filter(|r| r.countable()).collect();
        let finish: Vec<f64> = countable
            .iter()
            .filter_map(|r| r.s1_finished_secs)
            .collect();
        let prepare: Vec<f64> = countable
            .iter()
            .filter_map(|r| r.s2_prepared_secs)
            .collect();
        let start: Vec<f64> = countable.iter().filter_map(|r| r.s2_started_secs).collect();
        let q0: Vec<f64> = countable.iter().map(|r| r.q0 as f64).collect();
        SwitchSummary {
            countable_nodes: countable.len(),
            completed_nodes: countable.iter().filter(|r| r.completed()).count(),
            avg_finish_old_secs: Summary::of(&finish).mean,
            avg_prepare_new_secs: Summary::of(&prepare).mean,
            avg_start_new_secs: Summary::of(&start).mean,
            max_prepare_new_secs: Summary::of(&prepare).max,
            max_finish_old_secs: Summary::of(&finish).max,
            avg_q0: Summary::of(&q0).mean,
        }
    }

    /// Builds the summary from the O(1)-memory streaming aggregate a
    /// [`SystemReport`](fss_gossip::SystemReport) carries.  Numerically
    /// identical (bit for bit) to [`from_records`](Self::from_records) over
    /// the full per-peer record vector: the stats fold values in the same
    /// ascending peer-id order the record path collected them in.
    pub fn from_stats(stats: &SwitchStats) -> SwitchSummary {
        SwitchSummary {
            countable_nodes: stats.countable_nodes,
            completed_nodes: stats.completed_nodes,
            avg_finish_old_secs: stats.finish_old_secs.mean(),
            avg_prepare_new_secs: stats.prepare_new_secs.mean(),
            avg_start_new_secs: stats.start_new_secs.mean(),
            max_prepare_new_secs: stats.prepare_new_secs.max_or_zero(),
            max_finish_old_secs: stats.finish_old_secs.max_or_zero(),
            avg_q0: stats.q0.mean(),
        }
    }

    /// Fraction of countable nodes that completed the switch.
    pub fn completion_rate(&self) -> f64 {
        if self.countable_nodes == 0 {
            0.0
        } else {
            self.completed_nodes as f64 / self.countable_nodes as f64
        }
    }

    /// The paper's "average switch time" alias.
    pub fn avg_switch_time_secs(&self) -> f64 {
        self.avg_prepare_new_secs
    }
}

/// Aggregated channel-zap startup delays.
///
/// In a multi-channel deployment a *zap* is a viewer leaving one channel and
/// joining another; its **zap latency** is the time from joining the target
/// channel's overlay to the start of playback there (the `Q`
/// consecutive-segment startup rule — the viewer-facing analogue of the
/// paper's source-switch preparing time, measured per viewer instead of per
/// source switch).  Zaps whose playback never started within the measured
/// horizon count as *pending* and are excluded from the latency moments but
/// reported in the completion rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZapSummary {
    /// Zap arrivals whose playback started within the horizon.
    pub completed: usize,
    /// Zap arrivals still waiting for playback at the end of the horizon.
    pub pending: usize,
    /// Mean startup delay of completed zaps, seconds.
    pub avg_startup_secs: f64,
    /// Worst completed startup delay, seconds.
    pub max_startup_secs: f64,
    /// 95th-percentile completed startup delay, seconds.
    pub p95_startup_secs: f64,
}

impl ZapSummary {
    /// Builds the summary from the completed zaps' startup delays plus the
    /// count of zaps still pending at the end of the horizon.
    pub fn from_latencies(latencies: &[f64], pending: usize) -> ZapSummary {
        let s = Summary::of(latencies);
        ZapSummary {
            completed: s.count,
            pending,
            avg_startup_secs: s.mean,
            max_startup_secs: s.max,
            p95_startup_secs: Summary::quantile(latencies, 0.95),
        }
    }

    /// Builds the summary from a streaming latency sketch instead of a
    /// per-event vector.  Because simulated startup delays are whole
    /// multiples of the sketch unit (the period length `τ`), every field is
    /// bitwise identical to [`from_latencies`](Self::from_latencies) over
    /// the equivalent sample.  Never allocates.
    pub fn from_sketch(latencies: &QuantileSketch, pending: usize) -> ZapSummary {
        ZapSummary {
            completed: latencies.count() as usize,
            pending,
            avg_startup_secs: latencies.mean(),
            max_startup_secs: latencies.max(),
            p95_startup_secs: latencies.quantile(0.95),
        }
    }

    /// Total zap arrivals observed (completed + pending).
    pub fn zaps(&self) -> usize {
        self.completed + self.pending
    }

    /// Fraction of observed zaps that reached playback within the horizon
    /// (0 when no zap was observed).
    pub fn completion_rate(&self) -> f64 {
        if self.zaps() == 0 {
            0.0
        } else {
            self.completed as f64 / self.zaps() as f64
        }
    }
}

/// Metric 2: the reduction ratio of the average switch time achieved by the
/// fast algorithm relative to the normal algorithm,
/// `1 − fast / normal`.
pub fn reduction_ratio(fast_avg_switch_secs: f64, normal_avg_switch_secs: f64) -> f64 {
    if normal_avg_switch_secs <= 0.0 {
        0.0
    } else {
        1.0 - fast_avg_switch_secs / normal_avg_switch_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(q0: usize, finish: Option<f64>, prepare: Option<f64>) -> SwitchRecord {
        SwitchRecord {
            present_at_switch: true,
            departed: false,
            q0,
            s1_finished_secs: finish,
            s2_prepared_secs: prepare,
            s2_started_secs: match (finish, prepare) {
                (Some(f), Some(p)) => Some(f.max(p)),
                _ => None,
            },
        }
    }

    #[test]
    fn aggregates_only_countable_nodes() {
        let mut records = vec![
            record(100, Some(10.0), Some(20.0)),
            record(120, Some(14.0), Some(24.0)),
            record(80, Some(12.0), Some(22.0)),
        ];
        // A departed node and a late joiner must be excluded.
        records.push(SwitchRecord {
            departed: true,
            ..record(999, Some(1.0), Some(1.0))
        });
        records.push(SwitchRecord::default());

        let s = SwitchSummary::from_records(&records);
        assert_eq!(s.countable_nodes, 3);
        assert_eq!(s.completed_nodes, 3);
        assert!((s.avg_finish_old_secs - 12.0).abs() < 1e-12);
        assert!((s.avg_prepare_new_secs - 22.0).abs() < 1e-12);
        assert!((s.avg_start_new_secs - 22.0).abs() < 1e-12);
        assert_eq!(s.max_prepare_new_secs, 24.0);
        assert_eq!(s.max_finish_old_secs, 14.0);
        assert!((s.avg_q0 - 100.0).abs() < 1e-12);
        assert_eq!(s.completion_rate(), 1.0);
        assert_eq!(s.avg_switch_time_secs(), s.avg_prepare_new_secs);
    }

    #[test]
    fn incomplete_nodes_lower_the_completion_rate_only() {
        let records = vec![
            record(10, Some(5.0), Some(8.0)),
            record(10, Some(6.0), None),
        ];
        let s = SwitchSummary::from_records(&records);
        assert_eq!(s.countable_nodes, 2);
        assert_eq!(s.completed_nodes, 1);
        assert_eq!(s.completion_rate(), 0.5);
        // The prepare average uses only the node that has a value.
        assert!((s.avg_prepare_new_secs - 8.0).abs() < 1e-12);
        assert!((s.avg_finish_old_secs - 5.5).abs() < 1e-12);
    }

    #[test]
    fn empty_records() {
        let s = SwitchSummary::from_records(&[]);
        assert_eq!(s.countable_nodes, 0);
        assert_eq!(s.completion_rate(), 0.0);
        assert_eq!(s.avg_prepare_new_secs, 0.0);
    }

    #[test]
    fn zap_summary_aggregates_latencies_and_pending() {
        let latencies = [2.0, 4.0, 6.0, 8.0];
        let z = ZapSummary::from_latencies(&latencies, 2);
        assert_eq!(z.completed, 4);
        assert_eq!(z.pending, 2);
        assert_eq!(z.zaps(), 6);
        assert!((z.avg_startup_secs - 5.0).abs() < 1e-12);
        assert_eq!(z.max_startup_secs, 8.0);
        assert!(z.p95_startup_secs <= z.max_startup_secs + 1e-12);
        assert!((z.completion_rate() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn zap_summary_empty() {
        let z = ZapSummary::from_latencies(&[], 0);
        assert_eq!(z.zaps(), 0);
        assert_eq!(z.completion_rate(), 0.0);
        assert_eq!(z.avg_startup_secs, 0.0);
        let pending_only = ZapSummary::from_latencies(&[], 3);
        assert_eq!(pending_only.completion_rate(), 0.0);
        assert_eq!(pending_only.zaps(), 3);
    }

    #[test]
    fn from_stats_matches_from_records_bitwise() {
        let mut records = vec![
            record(100, Some(10.0), Some(20.0)),
            record(120, Some(14.0), Some(24.0)),
            record(80, Some(12.0), None),
        ];
        records.push(SwitchRecord {
            departed: true,
            ..record(999, Some(1.0), Some(1.0))
        });
        records.push(SwitchRecord::default());

        let via_records = SwitchSummary::from_records(&records);
        let via_stats = SwitchSummary::from_stats(&SwitchStats::from_records(&records));
        assert_eq!(via_records, via_stats);

        let empty = SwitchSummary::from_stats(&SwitchStats::from_records(&[]));
        assert_eq!(empty, SwitchSummary::from_records(&[]));
    }

    #[test]
    fn zap_summary_from_sketch_matches_from_latencies_bitwise() {
        let latencies: Vec<f64> = [2u64, 4, 4, 6, 8, 31, 2, 900]
            .iter()
            .map(|&k| k as f64)
            .collect();
        let mut sketch = QuantileSketch::new(1.0);
        for &l in &latencies {
            sketch.record(l);
        }
        assert_eq!(
            ZapSummary::from_sketch(&sketch, 2),
            ZapSummary::from_latencies(&latencies, 2)
        );
        assert_eq!(
            ZapSummary::from_sketch(&QuantileSketch::new(1.0), 3),
            ZapSummary::from_latencies(&[], 3)
        );
    }

    #[test]
    fn reduction_ratio_matches_the_paper_definition() {
        assert!((reduction_ratio(16.0, 20.0) - 0.2).abs() < 1e-12);
        assert!((reduction_ratio(14.0, 20.0) - 0.3).abs() < 1e-12);
        assert_eq!(reduction_ratio(10.0, 0.0), 0.0);
        // A slower "fast" algorithm produces a negative reduction.
        assert!(reduction_ratio(25.0, 20.0) < 0.0);
    }
}
