//! Admission-control metrics of the membership directory.
//!
//! When the session manager's rate-limited admission queue is enabled
//! (`max_admits_per_period`), a flash crowd no longer joins its target
//! channel in one period boundary — arrivals queue and admit over several
//! boundaries, which is how deployed systems behave under switch storms.
//! This module aggregates what that costs: how many arrivals waited, how
//! long, how deep the queues ran, and how stale the (optionally bounded)
//! candidate views were.

use crate::sketch::QuantileSketch;
use crate::summary::Summary;
use serde::{Deserialize, Serialize};

/// Aggregated admission-pipeline metrics of one multi-channel run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionSummary {
    /// True when a `max_admits_per_period` rate limit was active (the
    /// delay/queue fields are structurally zero otherwise).
    pub rate_limited: bool,
    /// Arrivals admitted into their target channel within the horizon.
    pub admitted: usize,
    /// Admitted arrivals that waited at least one period boundary in the
    /// admission queue.
    pub deferred: usize,
    /// Arrivals still queued (not yet members) at the end of the horizon.
    pub still_queued: usize,
    /// Deepest any channel's admission queue ran.
    pub max_queue_depth: usize,
    /// Mean admission delay (request boundary → admission boundary) of the
    /// admitted arrivals, seconds.  Zero-delay admissions count.
    pub avg_delay_secs: f64,
    /// 95th-percentile admission delay, seconds.
    pub p95_delay_secs: f64,
    /// Worst admission delay, seconds.
    pub max_delay_secs: f64,
    /// Mean candidate-view staleness across channels (age of the sampled
    /// candidate entries in membership updates; 0 for exact views).
    pub avg_view_staleness: f64,
}

impl AdmissionSummary {
    /// Builds the summary from the per-arrival admission delays (seconds,
    /// one entry per admitted arrival — zero for arrivals admitted at their
    /// request boundary), the queue tail state and the per-channel view
    /// staleness readings.
    pub fn from_parts(
        rate_limited: bool,
        delays_secs: &[f64],
        still_queued: usize,
        max_queue_depth: usize,
        view_staleness: &[f64],
    ) -> AdmissionSummary {
        let s = Summary::of(delays_secs);
        AdmissionSummary {
            rate_limited,
            admitted: delays_secs.len(),
            deferred: delays_secs.iter().filter(|&&d| d > 0.0).count(),
            still_queued,
            max_queue_depth,
            avg_delay_secs: s.mean,
            p95_delay_secs: Summary::quantile(delays_secs, 0.95),
            max_delay_secs: s.max,
            avg_view_staleness: Summary::of(view_staleness).mean,
        }
    }

    /// Builds the summary from a streaming delay sketch instead of a
    /// per-arrival vector.  `deferred` (admissions that waited ≥ 1 period)
    /// is carried as an explicit counter because the sketch's bucket 0
    /// deliberately conflates "zero delay" with "sub-tick delay".  For the
    /// simulator's whole-period delays every field matches
    /// [`from_parts`](Self::from_parts) bitwise.
    pub fn from_sketch(
        rate_limited: bool,
        delays: &QuantileSketch,
        deferred: usize,
        still_queued: usize,
        max_queue_depth: usize,
        view_staleness: &[f64],
    ) -> AdmissionSummary {
        AdmissionSummary {
            rate_limited,
            admitted: delays.count() as usize,
            deferred,
            still_queued,
            max_queue_depth,
            avg_delay_secs: delays.mean(),
            p95_delay_secs: delays.quantile(0.95),
            max_delay_secs: delays.max(),
            avg_view_staleness: Summary::of(view_staleness).mean,
        }
    }

    /// An empty summary for a run without admission control: every arrival
    /// was admitted at its request boundary, outside the pipeline's queue.
    pub fn pass_through(admitted: usize, view_staleness: &[f64]) -> AdmissionSummary {
        AdmissionSummary {
            rate_limited: false,
            admitted,
            deferred: 0,
            still_queued: 0,
            max_queue_depth: 0,
            avg_delay_secs: 0.0,
            p95_delay_secs: 0.0,
            max_delay_secs: 0.0,
            avg_view_staleness: Summary::of(view_staleness).mean,
        }
    }

    /// Total arrivals the pipeline saw (admitted + still queued).
    pub fn requested(&self) -> usize {
        self.admitted + self.still_queued
    }

    /// Fraction of requested arrivals admitted within the horizon (0 when
    /// nothing was requested).
    pub fn admission_rate(&self) -> f64 {
        if self.requested() == 0 {
            0.0
        } else {
            self.admitted as f64 / self.requested() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_delays_and_queue_state() {
        let delays = [0.0, 0.0, 1.0, 2.0, 4.0];
        let s = AdmissionSummary::from_parts(true, &delays, 3, 17, &[0.0, 2.0]);
        assert!(s.rate_limited);
        assert_eq!(s.admitted, 5);
        assert_eq!(s.deferred, 3);
        assert_eq!(s.still_queued, 3);
        assert_eq!(s.max_queue_depth, 17);
        assert_eq!(s.requested(), 8);
        assert!((s.avg_delay_secs - 1.4).abs() < 1e-12);
        assert_eq!(s.max_delay_secs, 4.0);
        assert!(s.p95_delay_secs <= s.max_delay_secs + 1e-12);
        assert!((s.admission_rate() - 5.0 / 8.0).abs() < 1e-12);
        assert!((s.avg_view_staleness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pass_through_reports_no_queueing() {
        let s = AdmissionSummary::pass_through(42, &[0.0, 0.0]);
        assert!(!s.rate_limited);
        assert_eq!(s.admitted, 42);
        assert_eq!(s.deferred, 0);
        assert_eq!(s.still_queued, 0);
        assert_eq!(s.requested(), 42);
        assert_eq!(s.admission_rate(), 1.0);
        assert_eq!(s.avg_delay_secs, 0.0);
    }

    #[test]
    fn sketch_path_matches_vector_path_bitwise() {
        let delays = [0.0, 0.0, 1.0, 2.0, 4.0];
        let mut sketch = QuantileSketch::new(1.0);
        for &d in &delays {
            sketch.record(d);
        }
        let deferred = delays.iter().filter(|&&d| d > 0.0).count();
        let staleness = [0.0, 2.0];
        assert_eq!(
            AdmissionSummary::from_sketch(true, &sketch, deferred, 3, 17, &staleness),
            AdmissionSummary::from_parts(true, &delays, 3, 17, &staleness)
        );
    }

    #[test]
    fn empty_pipeline() {
        let s = AdmissionSummary::from_parts(true, &[], 0, 0, &[]);
        assert_eq!(s.requested(), 0);
        assert_eq!(s.admission_rate(), 0.0);
        assert_eq!(s.avg_delay_secs, 0.0);
    }
}
