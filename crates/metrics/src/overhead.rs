//! Communication-overhead metric (§5.2 metric 3, Figures 8 and 12).

use fss_gossip::TrafficCounters;
use serde::{Deserialize, Serialize};

/// Communication overhead of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadSummary {
    /// Control (buffer-map) bits exchanged in the measured window.
    pub control_bits: u64,
    /// Data (segment) bits transferred in the measured window.
    pub data_bits: u64,
    /// Overhead ratio: control / data.
    pub overhead: f64,
}

impl OverheadSummary {
    /// Builds the summary from traffic counters.
    pub fn from_traffic(traffic: &TrafficCounters) -> OverheadSummary {
        OverheadSummary {
            control_bits: traffic.control_bits,
            data_bits: traffic.data_bits,
            overhead: traffic.overhead(),
        }
    }

    /// The analytical estimate of §5.3: with `M` neighbours, 620-bit maps and
    /// `segments_per_second` segments of `segment_bits` bits delivered per
    /// second, the overhead is `620·M / (segment_bits · segments_per_second)`.
    pub fn analytical(
        neighbors: usize,
        buffermap_bits: u64,
        segment_bits: u64,
        segments_per_second: f64,
    ) -> f64 {
        if segment_bits == 0 || segments_per_second <= 0.0 {
            return 0.0;
        }
        (buffermap_bits as f64 * neighbors as f64) / (segment_bits as f64 * segments_per_second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarises_traffic() {
        let mut t = TrafficCounters::new();
        t.add_control(620 * 5 * 100);
        t.add_data(30 * 1024 * 10 * 100);
        let s = OverheadSummary::from_traffic(&t);
        assert_eq!(s.control_bits, 310_000);
        assert_eq!(s.data_bits, 30_720_000);
        assert!((s.overhead - 310_000.0 / 30_720_000.0).abs() < 1e-12);
    }

    #[test]
    fn analytical_matches_the_papers_one_percent_estimate() {
        // 620 bits × M=5 / (30 Kb × 10 seg/s) ≈ 1 %.
        let o = OverheadSummary::analytical(5, 620, 30 * 1024, 10.0);
        assert!((o - 0.0100911).abs() < 1e-4);
        // Fewer delivered segments per second raise the ratio, as the paper
        // notes ("most nodes' data delivery rate cannot catch the media play
        // rate").
        assert!(OverheadSummary::analytical(5, 620, 30 * 1024, 6.7) > o);
    }

    #[test]
    fn degenerate_analytical_inputs() {
        assert_eq!(OverheadSummary::analytical(5, 620, 0, 10.0), 0.0);
        assert_eq!(OverheadSummary::analytical(5, 620, 30 * 1024, 0.0), 0.0);
    }
}
