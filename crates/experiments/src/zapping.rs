//! The channel-zapping workload: many concurrent channels, viewers hopping
//! between them.
//!
//! The paper evaluates a *source switch inside one stream*; multi-channel
//! systems (CliqueStream's clustered per-channel overlays, the live-
//! entertainment setting of PAPERS.md) face the dual problem — a *viewer
//! switching between streams* — which makes per-zap startup delay a
//! first-class metric.  This module runs that workload on the
//! `fss-runtime` [`SessionManager`] and sweeps it along three axes:
//!
//! * [`sweep_channel_counts`] — how does zap latency behave as viewership
//!   spreads over more, smaller channels at constant total population?
//! * [`sweep_zipf_alphas`] — how does channel-popularity skew (Zipf α)
//!   shift the zap load and the latency distribution?
//! * [`sweep_storm_sizes`] — how does a flash crowd of growing size stress
//!   the target channel's join path?
//! * [`sweep_admission_rates`] — a fixed-size flash crowd against a
//!   sweep of `max_admits_per_period` rate limits: the zap-latency versus
//!   admission-delay tradeoff of the membership directory's join queue.
//!
//! All runs use the pipelined stepping mode (channels synchronise pairwise
//! at zap batches only), whose reports are byte-identical to barrier
//! stepping — the `fss-runtime` test-suite proves it, so the sweeps get the
//! pipeline's wall-clock without any results caveat.

use crate::scenario::Algorithm;
use fss_runtime::{
    AdmissionControl, RuntimeReport, SessionConfig, SessionManager, SteppingMode, WorkerPool,
    ZapWorkload,
};
use serde::Serialize;
use std::sync::Arc;

/// Configuration of one channel-zapping experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ZappingScenario {
    /// The multi-channel session layout (channels, viewers, zap rate).
    pub session: SessionConfig,
    /// The zap workload shape (uniform / Zipf / flash crowd).
    pub workload: ZapWorkload,
    /// The scheduling policy every channel runs.
    pub algorithm: Algorithm,
    /// Zap-free periods to reach steady playback before measuring.
    pub warmup_periods: u64,
    /// Measured periods with the zapping workload active.
    pub measure_periods: u64,
}

impl ZappingScenario {
    /// Paper-flavoured defaults at a given channel count and per-channel
    /// audience, with the uniform workload.
    pub fn paper(channels: usize, viewers_per_channel: usize) -> Self {
        ZappingScenario {
            session: SessionConfig::paper_default(channels, viewers_per_channel),
            workload: ZapWorkload::Uniform,
            algorithm: Algorithm::Fast,
            warmup_periods: 40,
            measure_periods: 120,
        }
    }

    /// A reduced configuration for quick tests.
    pub fn quick(channels: usize, viewers_per_channel: usize) -> Self {
        ZappingScenario {
            warmup_periods: 25,
            measure_periods: 45,
            ..Self::paper(channels, viewers_per_channel)
        }
    }

    /// The same scenario with a different workload shape.
    pub fn with_workload(self, workload: ZapWorkload) -> Self {
        ZappingScenario { workload, ..self }
    }
}

/// Runs one channel-zapping scenario on `pool` — pipelined stepping,
/// deterministic for any pool size — and returns the runtime report.
pub fn run_channel_zapping(scenario: &ZappingScenario, pool: &Arc<WorkerPool>) -> RuntimeReport {
    let mut manager = SessionManager::new(scenario.session, Arc::clone(pool), || {
        scenario.algorithm.scheduler()
    });
    manager.set_workload(scenario.workload);
    manager.set_mode(SteppingMode::pipelined());
    manager.warmup(scenario.warmup_periods);
    manager.run_periods(scenario.measure_periods);
    manager.report()
}

/// One point of the channel-count sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ZappingSweepPoint {
    /// Number of concurrent channels.
    pub channels: usize,
    /// The aggregated runtime report at that channel count.
    pub report: RuntimeReport,
}

/// Sweeps the scenario over `channel_counts`, holding the *total* viewer
/// population constant (viewers spread over more, smaller channels) so the
/// points differ only in channel count.
///
/// Scenarios run one after another; each is internally parallel across its
/// channels on `pool`.
///
/// # Panics
/// Panics if a channel count does not divide the base scenario's total
/// population — channels are uniformly sized, so a non-divisor count would
/// silently drop the remainder and make the points non-comparable.
pub fn sweep_channel_counts(
    channel_counts: &[usize],
    base: &ZappingScenario,
    pool: &Arc<WorkerPool>,
) -> Vec<ZappingSweepPoint> {
    let total_viewers = base.session.channels * base.session.viewers_per_channel;
    channel_counts
        .iter()
        .map(|&channels| {
            assert!(
                channels > 0 && total_viewers.is_multiple_of(channels),
                "channel count {channels} does not divide the {total_viewers}-viewer population"
            );
            let scenario = ZappingScenario {
                session: SessionConfig {
                    channels,
                    viewers_per_channel: total_viewers / channels,
                    ..base.session
                },
                ..*base
            };
            ZappingSweepPoint {
                channels,
                report: run_channel_zapping(&scenario, pool),
            }
        })
        .collect()
}

/// One point of the popularity-skew sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AlphaSweepPoint {
    /// The Zipf exponent of the workload (0 = uniform popularity).
    pub alpha: f64,
    /// The aggregated runtime report under that skew.
    pub report: RuntimeReport,
}

/// Sweeps the Zipf exponent of the channel-popularity distribution over
/// `alphas`, holding the session layout fixed: how does concentrating the
/// audience on a few popular channels move the zap load and latency?
pub fn sweep_zipf_alphas(
    alphas: &[f64],
    base: &ZappingScenario,
    pool: &Arc<WorkerPool>,
) -> Vec<AlphaSweepPoint> {
    alphas
        .iter()
        .map(|&alpha| AlphaSweepPoint {
            alpha,
            report: run_channel_zapping(&base.with_workload(ZapWorkload::Zipf { alpha }), pool),
        })
        .collect()
}

/// One point of the flash-crowd sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StormSweepPoint {
    /// Viewers converging on the target channel in the storm period.
    pub storm_size: usize,
    /// The aggregated runtime report for that storm.
    pub report: RuntimeReport,
}

/// Sweeps the size of a flash crowd converging on channel 0 halfway through
/// the measured window, on top of the base scenario's background uniform
/// zap rate: how does a switch storm of growing size stress the join path?
pub fn sweep_storm_sizes(
    sizes: &[usize],
    base: &ZappingScenario,
    pool: &Arc<WorkerPool>,
) -> Vec<StormSweepPoint> {
    let at = base.warmup_periods + base.measure_periods / 2;
    sizes
        .iter()
        .map(|&size| StormSweepPoint {
            storm_size: size,
            report: run_channel_zapping(
                &base.with_workload(ZapWorkload::FlashCrowd {
                    target: 0,
                    at,
                    size,
                }),
                pool,
            ),
        })
        .collect()
}

/// One point of the admission-rate sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AdmissionSweepPoint {
    /// The per-channel per-boundary admission cap (`None` = unlimited, the
    /// legacy admit-everything-at-the-boundary behaviour).
    pub max_admits_per_period: Option<usize>,
    /// The aggregated runtime report under that cap.
    pub report: RuntimeReport,
}

/// Sweeps the membership directory's admission rate limit against a fixed
/// flash crowd: `storm_size` viewers converge on channel 0 halfway through
/// the measured window while each channel admits at most
/// `max_admits_per_period` arrivals per boundary.
///
/// The sweep exposes the deployment tradeoff the ROADMAP's storm-time
/// admission-control item asks about: an unlimited channel absorbs the
/// whole crowd in one boundary (fast zaps, a join stampede on the overlay),
/// while a tight limit spreads the crowd over many boundaries (bounded join
/// churn per period, but queued viewers wait — their zap latency includes
/// the admission delay, reported separately in
/// [`fss_metrics::AdmissionSummary`]).
pub fn sweep_admission_rates(
    rates: &[Option<usize>],
    storm_size: usize,
    base: &ZappingScenario,
    pool: &Arc<WorkerPool>,
) -> Vec<AdmissionSweepPoint> {
    let at = base.warmup_periods + base.measure_periods / 2;
    rates
        .iter()
        .map(|&max_admits_per_period| {
            let scenario = ZappingScenario {
                session: SessionConfig {
                    admission: AdmissionControl {
                        max_admits_per_period,
                        ..base.session.admission
                    },
                    ..base.session
                },
                ..*base
            }
            .with_workload(ZapWorkload::FlashCrowd {
                target: 0,
                at,
                size: storm_size,
            });
            AdmissionSweepPoint {
                max_admits_per_period,
                report: run_channel_zapping(&scenario, pool),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_zapping_scenario_completes_and_measures() {
        let scenario = ZappingScenario::quick(4, 40);
        let pool = Arc::new(WorkerPool::new(2));
        let report = run_channel_zapping(&scenario, &pool);
        assert_eq!(report.channels.len(), 4);
        assert_eq!(report.workload, "uniform");
        assert_eq!(
            report.periods,
            scenario.warmup_periods + scenario.measure_periods
        );
        assert!(report.total_zaps() > 0);
        assert!(report.cross_channel_zaps.completed > 0);
        assert!(report.cross_channel_zaps.completion_rate() > 0.5);
        // Startup after a zap takes at least one period, on average more.
        assert!(report.cross_channel_zaps.avg_startup_secs >= 1.0);
    }

    #[test]
    fn channel_sweep_conserves_total_population() {
        let base = ZappingScenario {
            measure_periods: 30,
            warmup_periods: 20,
            ..ZappingScenario::quick(2, 60)
        };
        let pool = Arc::new(WorkerPool::new(2));
        let points = sweep_channel_counts(&[2, 4], &base, &pool);
        assert_eq!(points.len(), 2);
        for point in &points {
            let viewers: usize = point.report.channels.iter().map(|c| c.viewers).sum();
            // Zapping conserves population exactly; construction splits the
            // 120 viewers evenly.
            assert_eq!(viewers, 120, "channels = {}", point.channels);
            assert!(point.report.total_zaps() > 0);
        }
    }

    #[test]
    fn alpha_sweep_increases_arrival_skew() {
        let base = ZappingScenario {
            measure_periods: 40,
            warmup_periods: 20,
            ..ZappingScenario::quick(4, 40)
        };
        let pool = Arc::new(WorkerPool::new(2));
        let points = sweep_zipf_alphas(&[0.0, 1.5], &base, &pool);
        assert_eq!(points.len(), 2);
        for point in &points {
            assert!(point.report.total_zaps() > 0, "alpha = {}", point.alpha);
            assert_eq!(point.report.workload, format!("zipf({})", point.alpha));
        }
        // A strong skew concentrates arrivals harder than no skew.
        assert!(
            points[1].report.zap_load.gini > points[0].report.zap_load.gini,
            "gini did not grow with alpha: {:?} vs {:?}",
            points[0].report.zap_load,
            points[1].report.zap_load
        );
    }

    #[test]
    fn storm_sweep_scales_the_burst() {
        let base = ZappingScenario {
            measure_periods: 30,
            warmup_periods: 20,
            ..ZappingScenario::quick(3, 40)
        };
        let pool = Arc::new(WorkerPool::new(2));
        let points = sweep_storm_sizes(&[0, 40], &base, &pool);
        assert_eq!(points.len(), 2);
        // The storm lands on channel 0 and dominates the arrival counts.
        let calm = &points[0].report;
        let stormy = &points[1].report;
        assert!(stormy.channels[0].zaps_in >= calm.channels[0].zaps_in + 30);
        assert_eq!(stormy.zap_load.busiest_channel, 0);
        assert!(stormy.zap_load.busiest_share > calm.zap_load.busiest_share);
    }

    /// The admission-rate sweep exposes the latency/delay tradeoff: tighter
    /// caps defer more of the storm and push the admission delay up, while
    /// the unlimited point never queues anything.
    #[test]
    fn admission_sweep_trades_zap_latency_for_admission_delay() {
        let base = ZappingScenario {
            measure_periods: 40,
            warmup_periods: 20,
            ..ZappingScenario::quick(3, 40)
        };
        let pool = Arc::new(WorkerPool::new(2));
        let points = sweep_admission_rates(&[None, Some(16), Some(4)], 50, &base, &pool);
        assert_eq!(points.len(), 3);

        let unlimited = &points[0].report;
        assert!(!unlimited.admission.rate_limited);
        assert_eq!(unlimited.admission.deferred, 0);
        assert!(unlimited.total_zaps() > 0);

        let loose = &points[1].report;
        let tight = &points[2].report;
        for limited in [loose, tight] {
            assert!(limited.admission.rate_limited);
            assert!(limited.admission.deferred > 0, "{:?}", limited.admission);
        }
        // A tighter cap defers for longer: the storm drains at 4/boundary
        // instead of 16/boundary on the target channel.
        assert!(
            tight.admission.avg_delay_secs > loose.admission.avg_delay_secs,
            "tight {:?} vs loose {:?}",
            tight.admission,
            loose.admission
        );
        assert!(tight.admission.max_delay_secs >= loose.admission.max_delay_secs);
        // All three points observe the same planned workload.
        assert_eq!(unlimited.total_zaps(), loose.total_zaps());
        assert_eq!(unlimited.total_zaps(), tight.total_zaps());
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn non_divisor_channel_count_panics() {
        let base = ZappingScenario::quick(2, 60); // 120 viewers total
        let pool = Arc::new(WorkerPool::new(1));
        let _ = sweep_channel_counts(&[7], &base, &pool);
    }
}
