//! The channel-zapping workload: many concurrent channels, viewers hopping
//! between them.
//!
//! The paper evaluates a *source switch inside one stream*; multi-channel
//! systems (CliqueStream's clustered per-channel overlays, the live-
//! entertainment setting of PAPERS.md) face the dual problem — a *viewer
//! switching between streams* — which makes per-zap startup delay a
//! first-class metric.  This module runs that workload on the
//! `fss-runtime` [`SessionManager`] and sweeps it over the channel count,
//! answering: how does zap latency behave as viewership spreads over more,
//! smaller channels at constant total population?

use crate::scenario::Algorithm;
use fss_runtime::{RuntimeReport, SessionConfig, SessionManager, WorkerPool};
use serde::Serialize;
use std::sync::Arc;

/// Configuration of one channel-zapping experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ZappingScenario {
    /// The multi-channel session layout (channels, viewers, zap rate).
    pub session: SessionConfig,
    /// The scheduling policy every channel runs.
    pub algorithm: Algorithm,
    /// Zap-free periods to reach steady playback before measuring.
    pub warmup_periods: u64,
    /// Measured periods with the zapping workload active.
    pub measure_periods: u64,
}

impl ZappingScenario {
    /// Paper-flavoured defaults at a given channel count and per-channel
    /// audience.
    pub fn paper(channels: usize, viewers_per_channel: usize) -> Self {
        ZappingScenario {
            session: SessionConfig::paper_default(channels, viewers_per_channel),
            algorithm: Algorithm::Fast,
            warmup_periods: 40,
            measure_periods: 120,
        }
    }

    /// A reduced configuration for quick tests.
    pub fn quick(channels: usize, viewers_per_channel: usize) -> Self {
        ZappingScenario {
            warmup_periods: 25,
            measure_periods: 45,
            ..Self::paper(channels, viewers_per_channel)
        }
    }
}

/// Runs one channel-zapping scenario on `pool` and returns the runtime
/// report (deterministic for any pool size).
pub fn run_channel_zapping(scenario: &ZappingScenario, pool: &Arc<WorkerPool>) -> RuntimeReport {
    let mut manager = SessionManager::new(scenario.session, Arc::clone(pool), || {
        scenario.algorithm.scheduler()
    });
    manager.warmup(scenario.warmup_periods);
    manager.run_periods(scenario.measure_periods);
    manager.report()
}

/// One point of the channel-count sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ZappingSweepPoint {
    /// Number of concurrent channels.
    pub channels: usize,
    /// The aggregated runtime report at that channel count.
    pub report: RuntimeReport,
}

/// Sweeps the scenario over `channel_counts`, holding the *total* viewer
/// population constant (viewers spread over more, smaller channels) so the
/// points differ only in channel count.
///
/// Scenarios run one after another; each is internally parallel across its
/// channels on `pool`.
///
/// # Panics
/// Panics if a channel count does not divide the base scenario's total
/// population — channels are uniformly sized, so a non-divisor count would
/// silently drop the remainder and make the points non-comparable.
pub fn sweep_channel_counts(
    channel_counts: &[usize],
    base: &ZappingScenario,
    pool: &Arc<WorkerPool>,
) -> Vec<ZappingSweepPoint> {
    let total_viewers = base.session.channels * base.session.viewers_per_channel;
    channel_counts
        .iter()
        .map(|&channels| {
            assert!(
                channels > 0 && total_viewers.is_multiple_of(channels),
                "channel count {channels} does not divide the {total_viewers}-viewer population"
            );
            let scenario = ZappingScenario {
                session: SessionConfig {
                    channels,
                    viewers_per_channel: total_viewers / channels,
                    ..base.session
                },
                ..*base
            };
            ZappingSweepPoint {
                channels,
                report: run_channel_zapping(&scenario, pool),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_zapping_scenario_completes_and_measures() {
        let scenario = ZappingScenario::quick(4, 40);
        let pool = Arc::new(WorkerPool::new(2));
        let report = run_channel_zapping(&scenario, &pool);
        assert_eq!(report.channels.len(), 4);
        assert_eq!(
            report.periods,
            scenario.warmup_periods + scenario.measure_periods
        );
        assert!(report.total_zaps() > 0);
        assert!(report.cross_channel_zaps.completed > 0);
        assert!(report.cross_channel_zaps.completion_rate() > 0.5);
        // Startup after a zap takes at least one period, on average more.
        assert!(report.cross_channel_zaps.avg_startup_secs >= 1.0);
    }

    #[test]
    fn channel_sweep_conserves_total_population() {
        let base = ZappingScenario {
            measure_periods: 30,
            warmup_periods: 20,
            ..ZappingScenario::quick(2, 60)
        };
        let pool = Arc::new(WorkerPool::new(2));
        let points = sweep_channel_counts(&[2, 4], &base, &pool);
        assert_eq!(points.len(), 2);
        for point in &points {
            let viewers: usize = point.report.channels.iter().map(|c| c.viewers).sum();
            // Zapping conserves population exactly; construction splits the
            // 120 viewers evenly.
            assert_eq!(viewers, 120, "channels = {}", point.channels);
            assert!(point.report.total_zaps() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn non_divisor_channel_count_panics() {
        let base = ZappingScenario::quick(2, 60); // 120 viewers total
        let pool = Arc::new(WorkerPool::new(1));
        let _ = sweep_channel_counts(&[7], &base, &pool);
    }
}
