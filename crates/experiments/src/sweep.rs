//! Parallel sweeps over network sizes.
//!
//! Each `(size, algorithm)` pair is an independent simulation, so the sweep
//! fans them out as chunks of one [`ScopedJob`] on the persistent
//! [`WorkerPool`] — the same pool that backs the gossip scheduling sweep
//! and the multi-channel session manager, so one set of threads serves the
//! whole process.  Every simulation uses its own deterministic seeds and
//! writes its result into its own chunk-indexed slot, so neither the pool
//! size nor the chunk-stealing order can change any result.
//!
//! [`ScopedJob`]: fss_sim::ScopedJob

use crate::runner::{run_scenario, ComparisonResult, RunResult};
use crate::scenario::{Algorithm, Environment, ScenarioConfig};
use fss_runtime::WorkerPool;
use fss_sim::exec::DisjointSlots;

/// The comparison at one network size.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Number of overlay nodes.
    pub nodes: usize,
    /// Fast-vs-normal comparison at that size.
    pub comparison: ComparisonResult,
}

impl SweepPoint {
    /// Reduction ratio at this size.
    pub fn reduction_ratio(&self) -> f64 {
        self.comparison.reduction_ratio()
    }
}

/// Runs the fast and normal algorithms at every size in `sizes`, in parallel
/// on a machine-sized throwaway pool, and returns the results ordered by
/// size.
///
/// `base` provides everything except the size and algorithm (environment,
/// warm-up, seeds...).  Prefer [`sweep_sizes_on`] when a pool already
/// exists.
pub fn sweep_sizes(sizes: &[usize], base: &ScenarioConfig) -> Vec<SweepPoint> {
    sweep_sizes_on(&WorkerPool::with_available_parallelism(), sizes, base)
}

/// Like [`sweep_sizes`], but runs on the caller's persistent pool.
pub fn sweep_sizes_on(
    pool: &WorkerPool,
    sizes: &[usize],
    base: &ScenarioConfig,
) -> Vec<SweepPoint> {
    let mut jobs: Vec<(usize, Algorithm)> = Vec::new();
    for &nodes in sizes {
        for algorithm in Algorithm::ALL {
            jobs.push((nodes, algorithm));
        }
    }

    let mut results: Vec<Option<RunResult>> = vec![None; jobs.len()];
    {
        let jobs = &jobs[..];
        let slots = DisjointSlots::new(&mut results);
        pool.execute(jobs.len(), &|chunk: usize| {
            let (nodes, algorithm) = jobs[chunk];
            let config = ScenarioConfig {
                nodes,
                algorithm,
                trace_seed: base.trace_seed ^ nodes as u64,
                ..*base
            };
            // SAFETY: chunk indices are unique per execute() run, so each
            // result slot is written by exactly one worker.
            let slot = unsafe { slots.slot(chunk) };
            *slot = Some(run_scenario(&config));
        });
    }
    // Assemble by moving each result out of its slot — run results carry
    // whole switch-record tables, so cloning them per size point would
    // double the sweep's peak memory for nothing.
    let mut results = results.into_iter();
    let mut points = Vec::with_capacity(sizes.len());
    for &nodes in sizes {
        let mut fast = None;
        let mut normal = None;
        for algorithm in Algorithm::ALL {
            let result = results
                .next()
                .flatten()
                .expect("one result per (size, algorithm) job");
            debug_assert_eq!(result.nodes, nodes);
            match algorithm {
                Algorithm::Fast => fast = Some(result),
                Algorithm::Normal => normal = Some(result),
            }
        }
        points.push(SweepPoint {
            nodes,
            comparison: ComparisonResult {
                fast: fast.expect("fast run present"),
                normal: normal.expect("normal run present"),
            },
        });
    }
    points
}

/// The network sizes the paper sweeps in Figures 6–8 and 10–12.
pub const PAPER_SIZES: [usize; 6] = [100, 500, 1_000, 2_000, 4_000, 8_000];

/// A reduced size sweep for quick runs, preserving the ordering of scales.
pub const QUICK_SIZES: [usize; 3] = [100, 250, 500];

/// Convenience: a paper-parameter sweep for one environment.
pub fn paper_sweep(environment: Environment) -> Vec<SweepPoint> {
    let base = ScenarioConfig::paper(PAPER_SIZES[0], Algorithm::Fast, environment);
    sweep_sizes(&PAPER_SIZES, &base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_orders_results_by_size_and_pairs_algorithms() {
        let base = ScenarioConfig::quick(50, Algorithm::Fast, Environment::Static);
        let points = sweep_sizes(&[50, 90], &base);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].nodes, 50);
        assert_eq!(points[1].nodes, 90);
        for p in &points {
            assert_eq!(p.comparison.fast.algorithm, Algorithm::Fast);
            assert_eq!(p.comparison.normal.algorithm, Algorithm::Normal);
            assert_eq!(p.comparison.fast.nodes, p.nodes);
            assert!(p.comparison.fast.completed);
            assert!(p.comparison.normal.completed);
            assert!(p.reduction_ratio().is_finite());
        }
    }

    #[test]
    fn sweep_is_deterministic_across_pool_sizes() {
        let base = ScenarioConfig::quick(60, Algorithm::Fast, Environment::Static);
        let a = sweep_sizes_on(&WorkerPool::new(1), &[60], &base);
        let b = sweep_sizes_on(&WorkerPool::new(4), &[60], &base);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_reuses_a_shared_pool() {
        let pool = WorkerPool::new(2);
        let base = ScenarioConfig::quick(50, Algorithm::Fast, Environment::Static);
        let first = sweep_sizes_on(&pool, &[50], &base);
        let second = sweep_sizes_on(&pool, &[50], &base);
        assert_eq!(first, second, "pool reuse must not change results");
    }

    #[test]
    fn size_constants_are_sane() {
        assert_eq!(PAPER_SIZES.len(), 6);
        assert!(PAPER_SIZES.windows(2).all(|w| w[0] < w[1]));
        assert!(QUICK_SIZES.windows(2).all(|w| w[0] < w[1]));
    }
}
