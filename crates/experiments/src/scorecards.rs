//! Diffable scenario scorecards: run a baseline and a set of variants on
//! the same pool, keep each run's [`Scorecard`], and report every variant
//! as a metric-by-metric [`ScorecardDelta`] against the baseline.
//!
//! This is the "did my knob help?" workflow the streaming-QoE telemetry
//! layer exists for: a scorecard is a few hundred bytes of exact text
//! (`Scorecard::to_text` round-trips bit-for-bit), so baselines can be
//! stored next to a scenario and diffed against any later run — across
//! commits, stepping modes or pool sizes, all of which are proven
//! byte-deterministic by the `fss-runtime` test-suite.

use crate::zapping::{run_channel_zapping, ZappingScenario};
use fss_metrics::{Scorecard, ScorecardDelta};
use fss_runtime::WorkerPool;
use serde::Serialize;
use std::sync::Arc;

/// One labelled variant's outcome in a scorecard comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ScorecardPoint {
    /// Human-readable variant label (e.g. `"admits=8"`).
    pub label: String,
    /// The variant run's scorecard.
    pub scorecard: Scorecard,
    /// Baseline → variant comparison.
    pub delta: ScorecardDelta,
}

/// Runs one scenario and returns its QoE scorecard.
pub fn scenario_scorecard(scenario: &ZappingScenario, pool: &Arc<WorkerPool>) -> Scorecard {
    run_channel_zapping(scenario, pool).scorecard
}

/// Runs `baseline` once, then every labelled variant, and returns each
/// variant's scorecard diffed against the baseline.  Runs execute one
/// after another; each is internally parallel across its channels.
pub fn diff_scenarios(
    baseline: &ZappingScenario,
    variants: &[(String, ZappingScenario)],
    pool: &Arc<WorkerPool>,
) -> Vec<ScorecardPoint> {
    let base = scenario_scorecard(baseline, pool);
    variants
        .iter()
        .map(|(label, scenario)| {
            let scorecard = scenario_scorecard(scenario, pool);
            ScorecardPoint {
                label: label.clone(),
                scorecard,
                delta: base.diff(&scorecard),
            }
        })
        .collect()
}

/// Renders a comparison as text: the baseline scorecard followed by one
/// delta table per variant.
pub fn render_comparison(baseline: &Scorecard, points: &[ScorecardPoint]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    // Writes into a String are infallible.
    let _ = writeln!(out, "baseline:\n{baseline}");
    for point in points {
        let _ = writeln!(out, "variant {}:\n{}", point.label, point.delta);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_runtime::{AdmissionControl, SessionConfig, ZapWorkload};

    fn tiny(admission: AdmissionControl) -> ZappingScenario {
        ZappingScenario {
            session: SessionConfig {
                admission,
                ..SessionConfig::paper_default(2, 20)
            },
            workload: ZapWorkload::Zipf { alpha: 1.2 },
            warmup_periods: 12,
            measure_periods: 12,
            ..ZappingScenario::quick(2, 20)
        }
    }

    #[test]
    fn scorecards_diff_and_round_trip_across_scenarios() {
        let pool = Arc::new(WorkerPool::new(2));
        let baseline = tiny(AdmissionControl::unlimited());
        let variant = tiny(AdmissionControl::rate_limited(2));
        let points = diff_scenarios(&baseline, &[("admits=2".to_string(), variant)], &pool);
        assert_eq!(points.len(), 1);
        let point = &points[0];
        // The run produced real telemetry...
        assert!(point.scorecard.periods > 0);
        assert!(point.scorecard.startups > 0);
        // ...the stored-text form round-trips exactly...
        let text = point.scorecard.to_text();
        assert_eq!(Scorecard::from_text(&text).unwrap(), point.scorecard);
        // ...and the delta pairs the two runs as given.
        assert_eq!(point.delta.after, point.scorecard);
        assert_eq!(
            Scorecard::from_text(&point.delta.before.to_text()).unwrap(),
            point.delta.before
        );
        let rendered = render_comparison(&point.delta.before, &points);
        assert!(rendered.contains("admits=2"));
        assert!(rendered.contains("continuity_mean"));
    }

    #[test]
    fn identical_scenarios_produce_identical_scorecards() {
        let pool = Arc::new(WorkerPool::new(2));
        let scenario = tiny(AdmissionControl::unlimited());
        let a = scenario_scorecard(&scenario, &pool);
        let b = scenario_scorecard(&scenario, &pool);
        assert_eq!(a, b);
    }
}
