//! Runs one scenario end to end.

use crate::scenario::{Algorithm, Environment, ScenarioConfig};
use fss_gossip::StreamingSystem;
use fss_metrics::{reduction_ratio, OverheadSummary, RatioTrack, SwitchSummary};
use fss_overlay::{ChurnModel, OverlayBuilder, OverlayConfig, PeerId};
use fss_trace::{GeneratorConfig, TraceGenerator};

/// The aggregated outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Number of overlay nodes at the start of the run.
    pub nodes: usize,
    /// The algorithm that produced the run.
    pub algorithm: Algorithm,
    /// Static or dynamic environment.
    pub environment: Environment,
    /// Switch-time metrics.
    pub switch: SwitchSummary,
    /// Communication overhead measured over the switch window.
    pub overhead: OverheadSummary,
    /// The per-second ratio tracks (Figures 5 and 9).
    pub ratio_track: RatioTrack,
    /// Whether every countable node completed the switch within the period
    /// budget.
    pub completed: bool,
    /// Periods simulated after the switch.
    pub periods_after_switch: u64,
    /// Cumulative QoE event counters (startups, stalls, continuity) of the
    /// whole run — the playback-quality side of the fault sweeps.
    pub qoe: fss_gossip::QoeTotals,
}

impl RunResult {
    /// The paper's average switch time for this run.
    pub fn avg_switch_time_secs(&self) -> f64 {
        self.switch.avg_switch_time_secs()
    }
}

/// The fast and normal algorithms run on the identical workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonResult {
    /// The fast-switch run.
    pub fast: RunResult,
    /// The normal-switch run.
    pub normal: RunResult,
}

impl ComparisonResult {
    /// Metric 2: reduction ratio of the average switch time.
    pub fn reduction_ratio(&self) -> f64 {
        reduction_ratio(
            self.fast.avg_switch_time_secs(),
            self.normal.avg_switch_time_secs(),
        )
    }

    /// Number of overlay nodes of the compared runs.
    pub fn nodes(&self) -> usize {
        self.fast.nodes
    }
}

/// Runs a single scenario.
///
/// # Panics
/// Panics if the scenario fails validation.
pub fn run_scenario(config: &ScenarioConfig) -> RunResult {
    config.validate().expect("valid scenario");

    // 1. Workload: synthetic crawl trace + augmented overlay.
    let trace = TraceGenerator::new(GeneratorConfig::sized(config.nodes, config.trace_seed))
        .generate(format!("scenario-{}", config.nodes));
    let overlay_config = OverlayConfig {
        min_degree: config.min_degree,
        seed: config.run_seed,
        ..OverlayConfig::default()
    };
    let overlay = OverlayBuilder::new(overlay_config)
        .expect("valid overlay config")
        .build(&trace)
        .expect("overlay construction");

    // 2. Pick the old source: the first active peer (the paper's current
    //    speaker).
    let peers: Vec<PeerId> = overlay.active_peers().collect();
    let s1 = peers[0];

    // 3. Assemble the system.
    let mut system = StreamingSystem::new(overlay, config.gossip, config.algorithm.scheduler());
    system.set_capacity_model(config.capacity_model());
    if let Some(network) = config.network {
        system.set_network(network);
    }
    if config.environment == Environment::Dynamic {
        system.set_churn(ChurnModel::new(
            config.churn_fraction,
            config.churn_fraction,
            config.min_degree,
            config.run_seed ^ 0xC4E7_11AA,
        ));
    }

    // 4. Warm up with S1 streaming, then switch to S2 at time "0".  The new
    //    source is an ordinary member picked from the middle of the *current*
    //    active population (under churn the originally planned peer may have
    //    left), keeping it topologically far from S1.
    system.start_initial_source(s1);
    system.run_periods(config.warmup_periods);
    let active: Vec<PeerId> = system
        .overlay()
        .active_peers()
        .filter(|&p| p != s1)
        .collect();
    let s2 = active[active.len() / 2];
    system.switch_source(s2);
    let periods_after_switch = system.run_until_switched(config.max_switch_periods);

    // 5. Aggregate.
    let report = system.report();
    RunResult {
        nodes: config.nodes,
        algorithm: config.algorithm,
        environment: config.environment,
        switch: SwitchSummary::from_stats(&report.switch),
        overhead: OverheadSummary::from_traffic(&report.traffic_switch_window),
        ratio_track: RatioTrack::from_samples(&report.ratio_samples),
        completed: report.switch_completed_secs.is_some(),
        periods_after_switch,
        qoe: report.qoe,
    }
}

/// Runs the fast and the normal algorithm on the identical workload
/// (same trace, same overlay seed, same churn seed).
pub fn run_comparison(base: &ScenarioConfig) -> ComparisonResult {
    ComparisonResult {
        fast: run_scenario(&base.with_algorithm(Algorithm::Fast)),
        normal: run_scenario(&base.with_algorithm(Algorithm::Normal)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Algorithm, Environment, ScenarioConfig};

    #[test]
    fn small_static_run_completes_and_reports() {
        let config = ScenarioConfig::quick(80, Algorithm::Fast, Environment::Static);
        let result = run_scenario(&config);
        assert!(result.completed, "switch did not complete");
        assert_eq!(result.nodes, 80);
        assert!(result.switch.countable_nodes > 70);
        assert_eq!(result.switch.completion_rate(), 1.0);
        assert!(result.avg_switch_time_secs() > 0.0);
        assert!(result.switch.avg_finish_old_secs > 0.0);
        assert!(result.overhead.overhead > 0.0 && result.overhead.overhead < 0.1);
        assert!(!result.ratio_track.is_empty());
        // The delivered ratio of S2 ends at 1.
        let last = result.ratio_track.rows().last().unwrap();
        assert!((last.delivered_ratio_s2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn comparison_runs_share_the_workload_and_fast_wins() {
        let base = ScenarioConfig::quick(120, Algorithm::Fast, Environment::Static);
        let cmp = run_comparison(&base);
        assert_eq!(cmp.nodes(), 120);
        assert!(cmp.fast.completed && cmp.normal.completed);
        // Identical workload: the backlog at switch time matches.
        assert!((cmp.fast.switch.avg_q0 - cmp.normal.switch.avg_q0).abs() < 1e-9);
        // The headline claim.  At this small scale the old-source backlog is
        // only a couple of hops' worth of segments, so we allow a small
        // tolerance; the full-size sweep in EXPERIMENTS.md shows the 20-30 %
        // reduction of the paper.
        assert!(
            cmp.fast.avg_switch_time_secs() <= cmp.normal.avg_switch_time_secs() + 0.5,
            "fast {} vs normal {}",
            cmp.fast.avg_switch_time_secs(),
            cmp.normal.avg_switch_time_secs()
        );
        assert!(cmp.reduction_ratio() >= -0.1);
        // And it does not cost extra communication overhead.
        assert!(cmp.fast.overhead.overhead <= cmp.normal.overhead.overhead * 1.05);
    }

    #[test]
    fn dynamic_environment_run_completes() {
        let config = ScenarioConfig::quick(100, Algorithm::Normal, Environment::Dynamic);
        let result = run_scenario(&config);
        assert!(result.completed, "dynamic switch did not complete");
        assert!(result.switch.completion_rate() > 0.99);
        assert!(result.switch.countable_nodes < 100, "some nodes departed");
    }

    #[test]
    #[should_panic(expected = "valid scenario")]
    fn invalid_scenario_panics() {
        let mut config = ScenarioConfig::quick(80, Algorithm::Fast, Environment::Static);
        config.warmup_periods = 0;
        let _ = run_scenario(&config);
    }
}
