//! Experiment harness reproducing the paper's evaluation (Section 5).
//!
//! * [`scenario`] — configuration of one simulation run (network size,
//!   algorithm, static/dynamic environment, warm-up length),
//! * [`runner`] — runs one scenario end to end and aggregates its metrics;
//!   [`runner::run_comparison`] runs the fast and normal algorithms on the
//!   *same* workload,
//! * [`sweep`] — parallel sweeps over network sizes (chunks on the
//!   persistent `fss-runtime` worker pool, one simulation per chunk),
//! * [`network`] — loss-rate and latency-scale fault sweeps on the
//!   event-driven network core: how switch latency and playback continuity
//!   degrade when the paper's ideal-network assumption is relaxed,
//! * [`memory`] — steady-state bytes/peer measurements, the 50k-peer
//!   large-population scenario the compact per-peer layout enables, and the
//!   million-viewer multi-channel capstone on the sharded peer store,
//! * [`scorecards`] — the QoE scorecard diff runner: run a baseline and
//!   labelled variants, diff every variant's [`fss_metrics::Scorecard`]
//!   against the baseline (see `docs/observability.md`),
//! * [`zapping`] — the multi-channel channel-zapping workload (viewers
//!   hopping between concurrent streams) and its sweeps: channel count,
//!   Zipf popularity skew, flash-crowd storm size, and the membership
//!   directory's admission rate limit (zap latency vs admission delay),
//! * [`figures`] — one module per evaluation figure (5–12) producing the
//!   table/series the paper plots.
//!
//! The `figures` binary (`cargo run -p fss-experiments --bin figures`)
//! regenerates every figure and writes the tables to stdout and/or files.

#![warn(missing_docs)]

pub mod figures;
pub mod memory;
pub mod network;
pub mod runner;
pub mod scenario;
pub mod scorecards;
pub mod sweep;
pub mod zapping;

pub use memory::{
    measure_memory, run_large_population, run_million_viewers, sweep_memory, LargePopulationReport,
    MemoryPoint, MemoryScenario, MillionReport, MillionScenario, LARGE_POPULATION_NODES,
    MILLION_VIEWERS,
};
pub use network::{
    render_fault_table, sweep_faults_on, sweep_latency_scales, sweep_loss_rates, FaultSweepPoint,
};
pub use runner::{run_comparison, run_scenario, ComparisonResult, RunResult};
pub use scenario::{Algorithm, Environment, ScenarioConfig};
pub use scorecards::{diff_scenarios, render_comparison, scenario_scorecard, ScorecardPoint};
pub use sweep::{sweep_sizes, sweep_sizes_on, SweepPoint};
pub use zapping::{
    run_channel_zapping, sweep_admission_rates, sweep_channel_counts, sweep_storm_sizes,
    sweep_zipf_alphas, AdmissionSweepPoint, AlphaSweepPoint, StormSweepPoint, ZappingScenario,
    ZappingSweepPoint,
};
