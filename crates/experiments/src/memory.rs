//! Memory-footprint experiments: bytes/peer at steady state, and the
//! large-population scenario the compact per-peer layout buys headroom for.
//!
//! The ROADMAP's million-user north star is gated on per-viewer state: at
//! ~10 KB/peer (the pre-compaction layout) a million viewers cost ~10 GB of
//! buffer state alone; the compact layout (u32 ring offsets, u16 epoch
//! sequence numbers — see `fss_gossip::buffer`) roughly halves that.  This
//! module measures it:
//!
//! * [`sweep_memory`] — steady-state [`MemSummary`] (bytes/peer, component
//!   breakdown, saving vs the legacy layout) across population sizes; the
//!   numbers land in `BENCH_period.json` and `docs/performance.md`, and the
//!   1k-node point is guarded by `crates/bench/tests/mem_budget.rs`;
//! * [`run_large_population`] — a single channel at
//!   [`LARGE_POPULATION_NODES`] (50 000) peers streamed to steady playback:
//!   an order of magnitude beyond the paper's evaluation sizes, feasible on
//!   one machine precisely because per-peer state is small and the period
//!   loop allocates nothing.

use crate::scenario::Algorithm;
use fss_gossip::{GossipConfig, StreamingSystem};
use fss_metrics::MemSummary;
use fss_overlay::{OverlayBuilder, OverlayConfig, PeerId};
use fss_trace::{GeneratorConfig, TraceGenerator};
use serde::Serialize;

/// Population of the large-population scenario: 50× the paper's common
/// 1 000-node configuration, single channel.
pub const LARGE_POPULATION_NODES: usize = 50_000;

/// Configuration of one steady-state memory measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MemoryScenario {
    /// Number of overlay nodes.
    pub nodes: usize,
    /// The scheduling policy (memory is policy-independent, but the run
    /// must use one).
    pub algorithm: Algorithm,
    /// Seed of the synthetic trace / overlay.
    pub seed: u64,
    /// Periods streamed before measuring, enough for every buffer to reach
    /// its steady-state high-water capacities (evictions running).
    pub warmup_periods: u64,
}

impl MemoryScenario {
    /// Defaults: fast-switch policy, 80 warm-up periods (buffers of
    /// `B = 600` fill within ~60 periods at `p·τ = 10`).
    pub fn sized(nodes: usize) -> Self {
        MemoryScenario {
            nodes,
            algorithm: Algorithm::Fast,
            seed: 0x3E3A_0001 ^ nodes as u64,
            warmup_periods: 80,
        }
    }
}

/// One point of the memory sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MemoryPoint {
    /// Number of overlay nodes.
    pub nodes: usize,
    /// The steady-state footprint summary at that size.
    pub mem: MemSummary,
}

/// Builds and streams the scenario's system to steady state.
fn steady_system(scenario: &MemoryScenario) -> StreamingSystem {
    let trace = TraceGenerator::new(GeneratorConfig::sized(scenario.nodes, scenario.seed))
        .generate(format!("memory-{}", scenario.nodes));
    let overlay_config = OverlayConfig {
        seed: scenario.seed ^ 0x00C4_A11E,
        ..OverlayConfig::default()
    };
    let overlay = OverlayBuilder::new(overlay_config)
        .expect("valid overlay config")
        .build(&trace)
        .expect("overlay construction");
    let source = overlay.active_peers().next().expect("non-empty overlay");
    let mut system = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        scenario.algorithm.scheduler(),
    );
    system.start_initial_source(source);
    system.run_periods(scenario.warmup_periods);
    system
}

/// Measures one scenario's steady-state per-peer footprint.
pub fn measure_memory(scenario: &MemoryScenario) -> MemSummary {
    MemSummary::from_usage(steady_system(scenario).memory_usage())
}

/// Sweeps the steady-state footprint over population sizes: bytes/peer
/// should stay essentially flat (per-peer state does not grow with the
/// system), which is exactly what makes large populations affordable.
pub fn sweep_memory(sizes: &[usize]) -> Vec<MemoryPoint> {
    sizes
        .iter()
        .map(|&nodes| MemoryPoint {
            nodes,
            mem: measure_memory(&MemoryScenario::sized(nodes)),
        })
        .collect()
}

/// Outcome of the large-population run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LargePopulationReport {
    /// Number of overlay nodes simulated.
    pub nodes: usize,
    /// Periods executed.
    pub periods: u64,
    /// Fraction of non-source nodes whose playback started.
    pub playback_started: f64,
    /// The steady-state footprint summary.
    pub mem: MemSummary,
}

/// Runs one single-channel large-population scenario (defaults to
/// [`LARGE_POPULATION_NODES`] via [`MemoryScenario::sized`]) and reports
/// playback health next to the footprint: the point is that tens of
/// thousands of viewers stream fine in one process on the compact layout.
pub fn run_large_population(scenario: &MemoryScenario) -> LargePopulationReport {
    let system = steady_system(scenario);
    let source = system
        .directory()
        .sessions()
        .first()
        .expect("initial source started")
        .source_peer;
    let viewers: Vec<PeerId> = system
        .overlay()
        .active_peers()
        .filter(|&p| p != source)
        .collect();
    let started = viewers
        .iter()
        .filter(|&&p| system.peer(p).playback().has_started())
        .count();
    LargePopulationReport {
        nodes: scenario.nodes,
        periods: system.periods(),
        playback_started: if viewers.is_empty() {
            0.0
        } else {
            started as f64 / viewers.len() as f64
        },
        mem: MemSummary::from_usage(system.memory_usage()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_flat_bytes_per_peer() {
        let points = sweep_memory(&[150, 300]);
        assert_eq!(points.len(), 2);
        for point in &points {
            assert_eq!(point.mem.active_peers, point.nodes);
            assert!(point.mem.avg_bytes_per_peer > 0.0);
            assert!(
                point.mem.reduction_vs_legacy >= 0.40,
                "compact layout saves ≥ 40% at {} nodes, got {:.1}%",
                point.nodes,
                100.0 * point.mem.reduction_vs_legacy
            );
        }
        // Per-peer state must not grow with the population (allow a small
        // tolerance for window-span variance between workloads).
        let (small, large) = (&points[0].mem, &points[1].mem);
        assert!(
            large.avg_bytes_per_peer < small.avg_bytes_per_peer * 1.25,
            "bytes/peer grew with population: {} -> {}",
            small.avg_bytes_per_peer,
            large.avg_bytes_per_peer
        );
    }

    /// A scaled-down stand-in keeps the scenario's code path covered in the
    /// default test suite; the full 50k-node run is `--ignored` (it needs a
    /// few seconds and ~250 MB).
    #[test]
    fn large_population_scenario_smoke() {
        let scenario = MemoryScenario {
            warmup_periods: 60,
            ..MemoryScenario::sized(2_000)
        };
        let report = run_large_population(&scenario);
        assert_eq!(report.nodes, 2_000);
        assert_eq!(report.periods, 60);
        assert!(
            report.playback_started > 0.9,
            "only {:.0}% of viewers started playback",
            100.0 * report.playback_started
        );
        assert!(report.mem.avg_bytes_per_peer > 0.0);
    }

    #[test]
    #[ignore = "full-scale run: ~50k peers, a few seconds, ~250 MB"]
    fn large_population_full_scale() {
        let report = run_large_population(&MemoryScenario::sized(LARGE_POPULATION_NODES));
        assert_eq!(report.nodes, LARGE_POPULATION_NODES);
        assert!(report.playback_started > 0.9);
        assert!(report.mem.reduction_vs_legacy >= 0.40);
        // The headroom claim: 50k viewers of buffer state fit comfortably
        // under a gigabyte.
        assert!(report.mem.peer_state_bytes < 1 << 30);
    }
}
