//! Memory-footprint experiments: bytes/peer at steady state, and the
//! large-population scenario the compact per-peer layout buys headroom for.
//!
//! The ROADMAP's million-user north star is gated on per-viewer state: at
//! ~10 KB/peer (the pre-compaction layout) a million viewers cost ~10 GB of
//! buffer state alone; the compact layout (u32 ring offsets, u16 epoch
//! sequence numbers — see `fss_gossip::buffer`) roughly halves that.  This
//! module measures it:
//!
//! * [`sweep_memory`] — steady-state [`MemSummary`] (bytes/peer, component
//!   breakdown, saving vs the legacy layout) across population sizes; the
//!   numbers land in `BENCH_period.json` and `docs/performance.md`, and the
//!   1k-node point is guarded by `crates/bench/tests/mem_budget.rs`;
//! * [`run_large_population`] — a single channel at
//!   [`LARGE_POPULATION_NODES`] (50 000) peers streamed to steady playback:
//!   an order of magnitude beyond the paper's evaluation sizes, feasible on
//!   one machine precisely because per-peer state is small and the period
//!   loop allocates nothing;
//! * [`run_million_viewers`] — the capstone: [`MILLION_VIEWERS`] viewers
//!   across several concurrent channels in **one process**, on the sharded
//!   struct-of-arrays peer store and the O(1)-memory metric sketches.  The
//!   full-scale configuration is exercised by the `--ignored` test and the
//!   `FSS_BENCH_1M=1` bench lane; its figures land in `BENCH_period.json`.

use crate::scenario::Algorithm;
use fss_gossip::{GossipConfig, StreamingSystem};
use fss_metrics::MemSummary;
use fss_overlay::{OverlayBuilder, OverlayConfig, PeerId};
use fss_runtime::{RuntimeReport, SessionConfig, SessionManager, WorkerPool};
use fss_trace::{GeneratorConfig, TraceGenerator};
use serde::Serialize;
use std::sync::Arc;

/// Population of the large-population scenario: 50× the paper's common
/// 1 000-node configuration, single channel.
pub const LARGE_POPULATION_NODES: usize = 50_000;

/// Configuration of one steady-state memory measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MemoryScenario {
    /// Number of overlay nodes.
    pub nodes: usize,
    /// The scheduling policy (memory is policy-independent, but the run
    /// must use one).
    pub algorithm: Algorithm,
    /// Seed of the synthetic trace / overlay.
    pub seed: u64,
    /// Periods streamed before measuring, enough for every buffer to reach
    /// its steady-state high-water capacities (evictions running).
    pub warmup_periods: u64,
    /// Struct-of-arrays shard count of the peer store (≤ 1 keeps the
    /// store's default single-shard layout).  Sharding is unobservable in
    /// every result — it only changes column placement and how the
    /// scheduling sweep chunks over workers — so memory figures measured
    /// sharded and unsharded agree.
    pub shards: usize,
}

impl MemoryScenario {
    /// Defaults: fast-switch policy, 80 warm-up periods (buffers of
    /// `B = 600` fill within ~60 periods at `p·τ = 10`), unsharded store.
    pub fn sized(nodes: usize) -> Self {
        MemoryScenario {
            nodes,
            algorithm: Algorithm::Fast,
            seed: 0x3E3A_0001 ^ nodes as u64,
            warmup_periods: 80,
            shards: 1,
        }
    }

    /// The same scenario on a sharded store.
    pub fn sharded(nodes: usize, shards: usize) -> Self {
        MemoryScenario {
            shards,
            ..Self::sized(nodes)
        }
    }
}

/// One point of the memory sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MemoryPoint {
    /// Number of overlay nodes.
    pub nodes: usize,
    /// The steady-state footprint summary at that size.
    pub mem: MemSummary,
}

/// Builds and streams the scenario's system to steady state.
fn steady_system(scenario: &MemoryScenario) -> StreamingSystem {
    let trace = TraceGenerator::new(GeneratorConfig::sized(scenario.nodes, scenario.seed))
        .generate(format!("memory-{}", scenario.nodes));
    let overlay_config = OverlayConfig {
        seed: scenario.seed ^ 0x00C4_A11E,
        ..OverlayConfig::default()
    };
    let overlay = OverlayBuilder::new(overlay_config)
        .expect("valid overlay config")
        .build(&trace)
        .expect("overlay construction");
    let source = overlay.active_peers().next().expect("non-empty overlay");
    let mut system = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        scenario.algorithm.scheduler(),
    );
    if scenario.shards > 1 {
        system.set_shards(scenario.shards);
    }
    system.start_initial_source(source);
    system.run_periods(scenario.warmup_periods);
    system
}

/// Measures one scenario's steady-state per-peer footprint.
pub fn measure_memory(scenario: &MemoryScenario) -> MemSummary {
    MemSummary::from_usage(steady_system(scenario).memory_usage())
}

/// Sweeps the steady-state footprint over population sizes: bytes/peer
/// should stay essentially flat (per-peer state does not grow with the
/// system), which is exactly what makes large populations affordable.
pub fn sweep_memory(sizes: &[usize]) -> Vec<MemoryPoint> {
    sizes
        .iter()
        .map(|&nodes| MemoryPoint {
            nodes,
            mem: measure_memory(&MemoryScenario::sized(nodes)),
        })
        .collect()
}

/// Outcome of the large-population run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LargePopulationReport {
    /// Number of overlay nodes simulated.
    pub nodes: usize,
    /// Periods executed.
    pub periods: u64,
    /// Fraction of non-source nodes whose playback started.
    pub playback_started: f64,
    /// The steady-state footprint summary.
    pub mem: MemSummary,
}

/// Runs one single-channel large-population scenario (defaults to
/// [`LARGE_POPULATION_NODES`] via [`MemoryScenario::sized`]) and reports
/// playback health next to the footprint: the point is that tens of
/// thousands of viewers stream fine in one process on the compact layout.
pub fn run_large_population(scenario: &MemoryScenario) -> LargePopulationReport {
    let system = steady_system(scenario);
    let source = system
        .directory()
        .sessions()
        .first()
        .expect("initial source started")
        .source_peer;
    let viewers: Vec<PeerId> = system
        .overlay()
        .active_peers()
        .filter(|&p| p != source)
        .collect();
    let started = viewers
        .iter()
        .filter(|&&p| system.peer(p).playback().has_started())
        .count();
    LargePopulationReport {
        nodes: scenario.nodes,
        periods: system.periods(),
        playback_started: if viewers.is_empty() {
            0.0
        } else {
            started as f64 / viewers.len() as f64
        },
        mem: MemSummary::from_usage(system.memory_usage()),
    }
}

/// Total viewers of the full-scale million-viewer scenario.
pub const MILLION_VIEWERS: usize = 1_000_000;

/// Configuration of the multi-channel million-viewer scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MillionScenario {
    /// Number of concurrent channels hosted in the one process.
    pub channels: usize,
    /// Viewers per channel at start-up.
    pub viewers_per_channel: usize,
    /// Struct-of-arrays shard count per channel (the chunk unit of each
    /// channel's scheduling sweep).
    pub shards: usize,
    /// Worker-pool size the channels are stepped on.
    pub workers: usize,
    /// Warm-up periods with zapping disabled (buffers fill to capacity).
    pub warmup_periods: u64,
    /// Measured periods with the uniform zap workload running.
    pub measured_periods: u64,
    /// Fraction of each channel's viewers zapping away per period.  The
    /// full-scale default keeps this small: 0.1 % of 250 000 viewers is
    /// still 250 cross-channel moves per channel per period.
    pub zap_fraction: f64,
    /// Master seed.
    pub seed: u64,
}

impl MillionScenario {
    /// The full-scale configuration: 4 channels × 250 000 viewers
    /// (= [`MILLION_VIEWERS`]), 16 shards per channel.  Runs in minutes on
    /// one vCPU and holds the whole population's protocol state in < 5 GB.
    pub fn full() -> Self {
        MillionScenario {
            channels: 4,
            viewers_per_channel: MILLION_VIEWERS / 4,
            shards: 16,
            workers: 1,
            warmup_periods: 70,
            measured_periods: 5,
            zap_fraction: 0.001,
            seed: 0x03E3_A1E6,
        }
    }

    /// A scaled-down stand-in (same code path, 3 × 2 000 viewers) for the
    /// default test suite.
    pub fn smoke() -> Self {
        MillionScenario {
            channels: 3,
            viewers_per_channel: 2_000,
            shards: 4,
            workers: 2,
            warmup_periods: 40,
            measured_periods: 5,
            zap_fraction: 0.002,
            seed: 0x03E3_A1E6,
        }
    }

    /// Total viewers across all channels.
    pub fn viewers(&self) -> usize {
        self.channels * self.viewers_per_channel
    }
}

/// Outcome of the million-viewer run: the session's full report plus the
/// headline numbers the capstone is judged on.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MillionReport {
    /// Viewers at start-up (channels × viewers per channel).
    pub viewers: usize,
    /// Periods driven through every channel.
    pub periods: u64,
    /// Cross-channel zap arrivals observed in the measured window.
    pub zaps: usize,
    /// Fraction of observed zaps whose playback started within the window.
    pub zap_completion: f64,
    /// The full multi-channel report (per-channel breakdown, streaming
    /// sketch summaries, memory meter).
    pub report: RuntimeReport,
}

impl MillionReport {
    /// Total protocol-state bytes across every channel's peers.
    pub fn peer_state_bytes(&self) -> u64 {
        self.report.mem.peer_state_bytes
    }
}

/// Runs the multi-channel scenario to steady state and through its measured
/// zapping window.  One process, one worker pool, `channels` sharded peer
/// stores; per-event metric state is O(1) per channel (the streaming
/// sketches), so the footprint is the peers' protocol state alone.
pub fn run_million_viewers(scenario: &MillionScenario) -> MillionReport {
    let config = SessionConfig {
        zap_fraction: scenario.zap_fraction,
        seed: scenario.seed,
        ..SessionConfig::paper_default(scenario.channels, scenario.viewers_per_channel)
    };
    let pool = Arc::new(WorkerPool::new(scenario.workers));
    let algorithm = Algorithm::Fast;
    let mut session = SessionManager::new(config, pool, || algorithm.scheduler());
    session.set_shards(scenario.shards);
    session.warmup(scenario.warmup_periods);
    session.run_periods(scenario.measured_periods);
    let report = session.report();
    MillionReport {
        viewers: scenario.viewers(),
        periods: report.periods,
        zaps: report.total_zaps(),
        zap_completion: report.cross_channel_zaps.completion_rate(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_flat_bytes_per_peer() {
        let points = sweep_memory(&[150, 300]);
        assert_eq!(points.len(), 2);
        for point in &points {
            assert_eq!(point.mem.active_peers, point.nodes);
            assert!(point.mem.avg_bytes_per_peer > 0.0);
            assert!(
                point.mem.reduction_vs_legacy >= 0.40,
                "compact layout saves ≥ 40% at {} nodes, got {:.1}%",
                point.nodes,
                100.0 * point.mem.reduction_vs_legacy
            );
        }
        // Per-peer state must not grow with the population (allow a small
        // tolerance for window-span variance between workloads).
        let (small, large) = (&points[0].mem, &points[1].mem);
        assert!(
            large.avg_bytes_per_peer < small.avg_bytes_per_peer * 1.25,
            "bytes/peer grew with population: {} -> {}",
            small.avg_bytes_per_peer,
            large.avg_bytes_per_peer
        );
    }

    /// A scaled-down stand-in keeps the scenario's code path covered in the
    /// default test suite; the full 50k-node run is `--ignored` (it needs a
    /// few seconds and ~250 MB).
    #[test]
    fn large_population_scenario_smoke() {
        let scenario = MemoryScenario {
            warmup_periods: 60,
            ..MemoryScenario::sized(2_000)
        };
        let report = run_large_population(&scenario);
        assert_eq!(report.nodes, 2_000);
        assert_eq!(report.periods, 60);
        assert!(
            report.playback_started > 0.9,
            "only {:.0}% of viewers started playback",
            100.0 * report.playback_started
        );
        assert!(report.mem.avg_bytes_per_peer > 0.0);
    }

    #[test]
    #[ignore = "full-scale run: ~50k peers, a few seconds, ~250 MB"]
    fn large_population_full_scale() {
        let report = run_large_population(&MemoryScenario::sized(LARGE_POPULATION_NODES));
        assert_eq!(report.nodes, LARGE_POPULATION_NODES);
        assert!(report.playback_started > 0.9);
        assert!(report.mem.reduction_vs_legacy >= 0.40);
        // The headroom claim: 50k viewers of buffer state fit comfortably
        // under a gigabyte.
        assert!(report.mem.peer_state_bytes < 1 << 30);
    }

    /// Sharding is unobservable in the memory meter: the sharded and the
    /// unsharded run of the same scenario report identical footprints.
    #[test]
    fn sharded_memory_matches_unsharded() {
        let base = MemoryScenario {
            warmup_periods: 40,
            ..MemoryScenario::sized(500)
        };
        let sharded = MemoryScenario { shards: 4, ..base };
        assert_eq!(measure_memory(&base), measure_memory(&sharded));
    }

    /// The capstone's code path in miniature: several sharded channels on
    /// one pool, zapping viewers, streaming-sketch summaries, bounded
    /// footprint.
    #[test]
    fn million_scenario_smoke() {
        let scenario = MillionScenario::smoke();
        let result = run_million_viewers(&scenario);
        assert_eq!(result.viewers, 6_000);
        assert_eq!(result.periods, 45);
        assert!(result.zaps > 0, "the zap workload must run");
        assert!(
            result.zap_completion > 0.5,
            "most zaps reach playback: {:.2}",
            result.zap_completion
        );
        assert_eq!(result.report.channels.len(), 3);
        for channel in &result.report.channels {
            assert!(channel.traffic.data_bits > 0);
        }
        assert!(result.peer_state_bytes() > 0);
        assert!(result.report.mem.reduction_vs_legacy >= 0.40);
    }

    /// The capstone itself: one million viewers across 4 channels in one
    /// process.  `--ignored` because it needs minutes of wall clock and a
    /// few GB of RAM; the acceptance bound is ≤ 5.0 GB of peer state.
    #[test]
    #[ignore = "full-scale run: 1M viewers, minutes of wall clock, ~5 GB"]
    fn million_viewer_full_scale() {
        let scenario = MillionScenario::full();
        let result = run_million_viewers(&scenario);
        assert_eq!(result.viewers, MILLION_VIEWERS);
        assert!(result.zaps > 0);
        assert!(
            result.peer_state_bytes() as f64 <= 5.0 * 1e9,
            "peer state {} B exceeds the 5 GB acceptance bound",
            result.peer_state_bytes()
        );
        assert!(result.report.mem.reduction_vs_legacy >= 0.40);
    }
}
