//! Scenario configuration.

use fss_core::{FastSwitchScheduler, NormalSwitchScheduler};
use fss_gossip::{CapacityModel, GossipConfig, SegmentScheduler};
use fss_overlay::NetworkConfig;
use serde::{Deserialize, Serialize};

/// Which switch algorithm a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// The paper's Fast Switch Algorithm.
    Fast,
    /// The Normal Switch baseline.
    Normal,
}

impl Algorithm {
    /// Both algorithms, in the order they are reported.
    pub const ALL: [Algorithm; 2] = [Algorithm::Normal, Algorithm::Fast];

    /// Short name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Fast => "fast",
            Algorithm::Normal => "normal",
        }
    }

    /// Instantiates the scheduler.
    pub fn scheduler(&self) -> Box<dyn SegmentScheduler> {
        match self {
            Algorithm::Fast => Box::new(FastSwitchScheduler::new()),
            Algorithm::Normal => Box::new(NormalSwitchScheduler::new()),
        }
    }
}

/// Static or dynamic (churned) network environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Environment {
    /// No membership changes (§5.3).
    Static,
    /// 5 % of peers leave and 5 % join per scheduling period (§5.4).
    Dynamic,
}

impl Environment {
    /// Short name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            Environment::Static => "static",
            Environment::Dynamic => "dynamic",
        }
    }
}

/// Full description of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of overlay nodes.
    pub nodes: usize,
    /// The switch algorithm under test.
    pub algorithm: Algorithm,
    /// Static or dynamic environment.
    pub environment: Environment,
    /// Seed of the synthetic crawl trace.
    pub trace_seed: u64,
    /// Seed for overlay augmentation, bandwidth assignment and churn.
    pub run_seed: u64,
    /// Minimum neighbour count `M` (paper: 5).
    pub min_degree: usize,
    /// Scheduling periods executed before the switch ("run for a sufficient
    /// period of time to enter its stable phase").
    pub warmup_periods: u64,
    /// Maximum periods simulated after the switch before giving up.
    pub max_switch_periods: u64,
    /// Churn fractions for dynamic environments (leave, join).
    pub churn_fraction: f64,
    /// Whether supplier outbound capacity is per-link (default) or shared
    /// across requesters (the bandwidth-starved ablation).
    pub shared_supplier_capacity: bool,
    /// Optional message-level network model (latency / loss / jitter).
    /// `None` (the paper's implicit assumption) runs period-lockstep;
    /// `Some` switches the run to event-driven stepping — the ideal
    /// configuration is byte-identical to `None`.
    pub network: Option<NetworkConfig>,
    /// Protocol parameters.
    pub gossip: GossipConfig,
}

impl ScenarioConfig {
    /// The paper's configuration for a given size, algorithm and environment.
    pub fn paper(nodes: usize, algorithm: Algorithm, environment: Environment) -> Self {
        ScenarioConfig {
            nodes,
            algorithm,
            environment,
            trace_seed: 0x2001_0001 ^ nodes as u64,
            run_seed: 0x5EED_0001,
            min_degree: 5,
            warmup_periods: 40,
            max_switch_periods: 400,
            churn_fraction: 0.05,
            shared_supplier_capacity: false,
            network: None,
            gossip: GossipConfig::paper_default(),
        }
    }

    /// A reduced configuration for quick tests and micro-benchmarks.
    pub fn quick(nodes: usize, algorithm: Algorithm, environment: Environment) -> Self {
        ScenarioConfig {
            warmup_periods: 20,
            max_switch_periods: 200,
            ..Self::paper(nodes, algorithm, environment)
        }
    }

    /// The same scenario with a different algorithm (identical workload).
    pub fn with_algorithm(&self, algorithm: Algorithm) -> Self {
        ScenarioConfig { algorithm, ..*self }
    }

    /// The supplier-capacity model this scenario uses.
    pub fn capacity_model(&self) -> CapacityModel {
        if self.shared_supplier_capacity {
            CapacityModel::Shared
        } else {
            CapacityModel::PerLink
        }
    }

    /// Validates the scenario.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes <= self.min_degree {
            return Err(format!(
                "{} nodes cannot sustain a minimum degree of {}",
                self.nodes, self.min_degree
            ));
        }
        if self.warmup_periods == 0 {
            return Err("warmup_periods must be positive".into());
        }
        if !(0.0..=0.5).contains(&self.churn_fraction) {
            return Err(format!(
                "churn_fraction {} outside the sensible range [0, 0.5]",
                self.churn_fraction
            ));
        }
        if let Some(network) = self.network {
            network.validate()?;
        }
        self.gossip.validate().map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_1() {
        let c = ScenarioConfig::paper(1_000, Algorithm::Fast, Environment::Static);
        assert_eq!(c.min_degree, 5);
        assert_eq!(c.churn_fraction, 0.05);
        assert_eq!(c.gossip.play_rate, 10.0);
        assert_eq!(c.gossip.new_source_qs, 50);
        c.validate().unwrap();
    }

    #[test]
    fn algorithm_and_environment_names() {
        assert_eq!(Algorithm::Fast.name(), "fast");
        assert_eq!(Algorithm::Normal.name(), "normal");
        assert_eq!(Environment::Static.name(), "static");
        assert_eq!(Environment::Dynamic.name(), "dynamic");
        assert_eq!(Algorithm::Fast.scheduler().name(), "fast-switch");
        assert_eq!(Algorithm::Normal.scheduler().name(), "normal-switch");
        assert_eq!(Algorithm::ALL.len(), 2);
    }

    #[test]
    fn with_algorithm_keeps_the_workload() {
        let a = ScenarioConfig::paper(500, Algorithm::Normal, Environment::Dynamic);
        let b = a.with_algorithm(Algorithm::Fast);
        assert_eq!(a.trace_seed, b.trace_seed);
        assert_eq!(a.run_seed, b.run_seed);
        assert_eq!(b.algorithm, Algorithm::Fast);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = ScenarioConfig::paper(4, Algorithm::Fast, Environment::Static);
        assert!(c.validate().is_err());
        c = ScenarioConfig::paper(100, Algorithm::Fast, Environment::Static);
        c.warmup_periods = 0;
        assert!(c.validate().is_err());
        c = ScenarioConfig::paper(100, Algorithm::Fast, Environment::Static);
        c.churn_fraction = 0.9;
        assert!(c.validate().is_err());
        c = ScenarioConfig::paper(100, Algorithm::Fast, Environment::Static);
        c.gossip.buffer_capacity = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn capacity_model_defaults_to_per_link() {
        let c = ScenarioConfig::paper(100, Algorithm::Fast, Environment::Static);
        assert_eq!(c.capacity_model(), CapacityModel::PerLink);
        let shared = ScenarioConfig {
            shared_supplier_capacity: true,
            ..c
        };
        assert_eq!(shared.capacity_model(), CapacityModel::Shared);
    }

    #[test]
    fn quick_config_is_smaller_but_valid() {
        let q = ScenarioConfig::quick(100, Algorithm::Fast, Environment::Static);
        let p = ScenarioConfig::paper(100, Algorithm::Fast, Environment::Static);
        assert!(q.warmup_periods < p.warmup_periods);
        q.validate().unwrap();
    }
}
