//! Loss / latency fault sweeps over the event-driven network model.
//!
//! The paper's evaluation assumes an implicitly lossless, instant network;
//! these sweeps quantify how its headline metric — source-switch latency —
//! and playback continuity degrade when the event-driven core injects
//! per-message Bernoulli loss or scales the trace latencies past the
//! scheduling period (see `docs/network.md`).  Each fault point is an
//! independent single-channel run of the usual switch scenario, fanned out
//! on the persistent worker pool like the size sweeps.

use crate::runner::{run_scenario, RunResult};
use crate::scenario::ScenarioConfig;
use fss_overlay::NetworkConfig;
use fss_runtime::WorkerPool;
use fss_sim::exec::DisjointSlots;

/// The outcome of the switch scenario at one fault point.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepPoint {
    /// Per-message Bernoulli loss rate of this point.
    pub loss_rate: f64,
    /// Multiplier on the trace-derived per-link latency of this point.
    pub latency_scale: f64,
    /// Average per-node source-switch time (the paper's Metric 1).
    pub avg_switch_secs: f64,
    /// Seconds until the slowest countable node had the new stream ready
    /// (the tail of the switch-time distribution).
    pub max_switch_secs: f64,
    /// Run-wide playback continuity (played / play opportunities; `None`
    /// before anything played).
    pub continuity: Option<f64>,
    /// Completed stall episodes across all peers.
    pub stall_events: u64,
    /// Whether every countable node completed the switch.
    pub completed: bool,
}

impl FaultSweepPoint {
    fn from_run(loss_rate: f64, latency_scale: f64, run: &RunResult) -> Self {
        FaultSweepPoint {
            loss_rate,
            latency_scale,
            avg_switch_secs: run.avg_switch_time_secs(),
            max_switch_secs: run.switch.max_prepare_new_secs,
            continuity: run.qoe.continuity(),
            stall_events: run.qoe.stall_events,
            completed: run.completed,
        }
    }
}

/// Runs the switch scenario of `base` once per `(loss, latency)` fault
/// point, in parallel on `pool`, and returns the points in input order.
///
/// `base.network` supplies the fault-stream seed and jitter; each point
/// overrides only its loss rate and latency scale.  A `(0.0, 0.0)` point is
/// the ideal network — byte-identical to the period-lockstep run of `base`.
pub fn sweep_faults_on(
    pool: &WorkerPool,
    points: &[(f64, f64)],
    base: &ScenarioConfig,
) -> Vec<FaultSweepPoint> {
    let seed_config = base.network.unwrap_or_default();
    let mut results: Vec<Option<FaultSweepPoint>> = vec![None; points.len()];
    {
        let slots = DisjointSlots::new(&mut results);
        pool.execute(points.len(), &|chunk: usize| {
            let (loss_rate, latency_scale) = points[chunk];
            let config = ScenarioConfig {
                network: Some(NetworkConfig {
                    loss_rate,
                    latency_scale,
                    ..seed_config
                }),
                ..*base
            };
            let run = run_scenario(&config);
            // SAFETY: chunk indices are unique per execute() run, so each
            // result slot is written by exactly one worker.
            *unsafe { slots.slot(chunk) } =
                Some(FaultSweepPoint::from_run(loss_rate, latency_scale, &run));
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("all points ran"))
        .collect()
}

/// Sweeps per-message loss rates at zero added latency (continuity and
/// switch latency vs loss — the fault-resilience curve).
pub fn sweep_loss_rates(
    pool: &WorkerPool,
    losses: &[f64],
    base: &ScenarioConfig,
) -> Vec<FaultSweepPoint> {
    let points: Vec<(f64, f64)> = losses.iter().map(|&l| (l, 0.0)).collect();
    sweep_faults_on(pool, &points, base)
}

/// Sweeps latency scales at zero loss (switch latency vs propagation
/// delay — where lockstep models and deployments diverge).
pub fn sweep_latency_scales(
    pool: &WorkerPool,
    scales: &[f64],
    base: &ScenarioConfig,
) -> Vec<FaultSweepPoint> {
    let points: Vec<(f64, f64)> = scales.iter().map(|&s| (0.0, s)).collect();
    sweep_faults_on(pool, &points, base)
}

/// Renders a sweep as an aligned text table (one row per fault point).
pub fn render_fault_table(points: &[FaultSweepPoint]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "{:>6} {:>8} {:>12} {:>12} {:>11} {:>7}",
        "loss", "lat.x", "avg-switch-s", "max-switch-s", "continuity", "stalls"
    )
    .unwrap();
    for p in points {
        writeln!(
            out,
            "{:>6.3} {:>8.1} {:>12.2} {:>12.1} {:>11} {:>7}",
            p.loss_rate,
            p.latency_scale,
            p.avg_switch_secs,
            p.max_switch_secs,
            p.continuity
                .map(|c| format!("{c:.4}"))
                .unwrap_or_else(|| "-".into()),
            p.stall_events,
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Algorithm, Environment};

    fn base() -> ScenarioConfig {
        ScenarioConfig {
            network: Some(NetworkConfig::ideal().with_seed(0xFA17)),
            ..ScenarioConfig::quick(120, Algorithm::Fast, Environment::Static)
        }
    }

    #[test]
    fn continuity_and_switch_latency_degrade_monotonically_with_loss() {
        let pool = WorkerPool::new(3);
        let points = sweep_loss_rates(&pool, &[0.0, 0.1, 0.25], &base());
        assert_eq!(points.len(), 3);
        assert!(points[0].completed, "the lossless run must complete");
        for pair in points.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert!(
                b.avg_switch_secs >= a.avg_switch_secs,
                "switch latency must not improve under loss: {} -> {} at loss {}",
                a.avg_switch_secs,
                b.avg_switch_secs,
                b.loss_rate
            );
            let (ca, cb) = (a.continuity.unwrap(), b.continuity.unwrap());
            assert!(
                cb <= ca + 1e-9,
                "continuity must not improve under loss: {ca} -> {cb} at loss {}",
                b.loss_rate
            );
        }
        assert!(
            points[2].avg_switch_secs > points[0].avg_switch_secs,
            "25% loss must measurably slow the switch"
        );
        assert!(points[2].continuity.unwrap() < points[0].continuity.unwrap());
    }

    #[test]
    fn switch_latency_degrades_monotonically_with_latency_scale() {
        let pool = WorkerPool::new(3);
        // Trace RTTs sit well under τ = 1 s, so meaningful degradation
        // needs scales that push transfers across period boundaries.
        // Past ~10x the run stops completing within its period budget and
        // the switch average becomes a partial (misleadingly low) figure,
        // so the sweep stops at 8x.
        let points = sweep_latency_scales(&pool, &[0.0, 3.0, 8.0], &base());
        assert!(points[0].completed && points[1].completed);
        for pair in points.windows(2) {
            assert!(
                pair[1].avg_switch_secs >= pair[0].avg_switch_secs,
                "switch latency must not improve with slower links: {} -> {} at scale {}",
                pair[0].avg_switch_secs,
                pair[1].avg_switch_secs,
                pair[1].latency_scale
            );
        }
        assert!(
            points[2].avg_switch_secs > points[0].avg_switch_secs,
            "8x latency must measurably slow the switch"
        );
    }

    #[test]
    fn the_ideal_point_matches_the_period_lockstep_run() {
        let pool = WorkerPool::new(2);
        let lockstep = ScenarioConfig {
            network: None,
            ..base()
        };
        let reference = run_scenario(&lockstep);
        let point = &sweep_faults_on(&pool, &[(0.0, 0.0)], &base())[0];
        assert_eq!(point.avg_switch_secs, reference.avg_switch_time_secs());
        assert_eq!(point.continuity, reference.qoe.continuity());
        assert_eq!(point.completed, reference.completed);
    }

    #[test]
    fn the_fault_table_renders_every_point() {
        let pool = WorkerPool::new(2);
        let points = sweep_loss_rates(&pool, &[0.0, 0.1], &base());
        let table = render_fault_table(&points);
        assert_eq!(table.lines().count(), 3);
        assert!(table.contains("avg-switch-s"));
    }
}
