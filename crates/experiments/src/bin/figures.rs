//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! figures [--quick] [--sizes N,N,...] [--track-nodes N] [--out DIR] [--csv] [static|dynamic|all]
//! ```
//!
//! * `--quick`  — reduced network sizes (fast sanity run; trends preserved)
//! * `--sizes`  — explicit comma-separated network sizes for the sweeps
//! * `--track-nodes` — network size for the ratio-track figures (5 / 9)
//! * `--out DIR` — additionally write one file per figure into `DIR`
//! * `--csv`    — write CSV instead of aligned text files
//! * `static` / `dynamic` / `all` — which environments to run (default `all`)

use fss_experiments::figures::{generate, generate_custom, FigureScale, FigureSet};
use fss_experiments::Environment;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    scale: FigureScale,
    sizes: Option<Vec<usize>>,
    track_nodes: Option<usize>,
    out_dir: Option<PathBuf>,
    csv: bool,
    environments: Vec<Environment>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        scale: FigureScale::Paper,
        sizes: None,
        track_nodes: None,
        out_dir: None,
        csv: false,
        environments: vec![Environment::Static, Environment::Dynamic],
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => options.scale = FigureScale::Quick,
            "--csv" => options.csv = true,
            "--sizes" => {
                let list = iter
                    .next()
                    .ok_or("--sizes requires a comma-separated list")?;
                let sizes: Result<Vec<usize>, _> =
                    list.split(',').map(|s| s.trim().parse::<usize>()).collect();
                options.sizes = Some(sizes.map_err(|e| format!("bad --sizes value: {e}"))?);
            }
            "--track-nodes" => {
                let value = iter.next().ok_or("--track-nodes requires a number")?;
                options.track_nodes = Some(
                    value
                        .parse()
                        .map_err(|e| format!("bad --track-nodes: {e}"))?,
                );
            }
            "--out" => {
                let dir = iter.next().ok_or("--out requires a directory")?;
                options.out_dir = Some(PathBuf::from(dir));
            }
            "static" => options.environments = vec![Environment::Static],
            "dynamic" => options.environments = vec![Environment::Dynamic],
            "all" => {
                options.environments = vec![Environment::Static, Environment::Dynamic];
            }
            "--help" | "-h" => {
                return Err(
                    "usage: figures [--quick] [--out DIR] [--csv] [static|dynamic|all]".to_string(),
                )
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(options)
}

fn emit(set: &FigureSet, options: &Options) -> std::io::Result<()> {
    for table in &set.tables {
        println!("{}", table.to_text());
        if let Some(dir) = &options.out_dir {
            std::fs::create_dir_all(dir)?;
            let slug: String = table
                .title()
                .chars()
                .take_while(|c| *c != ':')
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_lowercase();
            let extension = if options.csv { "csv" } else { "txt" };
            let path = dir.join(format!("{slug}_{}.{extension}", set.environment.name()));
            let contents = if options.csv {
                table.to_csv()
            } else {
                table.to_text()
            };
            std::fs::write(path, contents)?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    for &environment in &options.environments {
        eprintln!(
            "running {} figures at {:?} scale...",
            environment.name(),
            match options.scale {
                FigureScale::Quick => "quick",
                FigureScale::Paper => "paper",
            }
        );
        let set = match &options.sizes {
            Some(sizes) => generate_custom(
                environment,
                options.scale,
                sizes,
                options.track_nodes.unwrap_or(options.scale.track_nodes()),
            ),
            None => generate(environment, options.scale),
        };
        if let Err(error) = emit(&set, &options) {
            eprintln!("failed to write figures: {error}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
