//! Figures 6–8 (static) and 10–12 (dynamic): per-size tables.

use crate::scenario::Environment;
use crate::sweep::SweepPoint;
use fss_metrics::Table;

fn figure_number(environment: Environment, static_no: u8, dynamic_no: u8) -> u8 {
    match environment {
        Environment::Static => static_no,
        Environment::Dynamic => dynamic_no,
    }
}

/// Figure 6 / 10: average finishing time of `S1` and preparing time of `S2`,
/// four bars per network size (normal-finish, fast-finish, fast-prepare,
/// normal-prepare, in the paper's bar order).
pub fn finishing_preparing_table(environment: Environment, points: &[SweepPoint]) -> Table {
    let fig = figure_number(environment, 6, 10);
    let mut table = Table::new(
        format!(
            "Figure {fig}: avg finishing time of S1 and preparing time of S2 ({} environments)",
            environment.name()
        ),
        &[
            "nodes",
            "finish_s1_normal",
            "finish_s1_fast",
            "prepare_s2_fast",
            "prepare_s2_normal",
        ],
    );
    for p in points {
        table.push_row(vec![
            p.nodes.to_string(),
            format!("{:.2}", p.comparison.normal.switch.avg_finish_old_secs),
            format!("{:.2}", p.comparison.fast.switch.avg_finish_old_secs),
            format!("{:.2}", p.comparison.fast.switch.avg_prepare_new_secs),
            format!("{:.2}", p.comparison.normal.switch.avg_prepare_new_secs),
        ]);
    }
    table
}

/// Figure 7 / 11: average switch time for both algorithms and the reduction
/// ratio.
pub fn switch_time_table(environment: Environment, points: &[SweepPoint]) -> Table {
    let fig = figure_number(environment, 7, 11);
    let mut table = Table::new(
        format!(
            "Figure {fig}: avg switch time and its reduction ratio ({} environments)",
            environment.name()
        ),
        &["nodes", "switch_normal", "switch_fast", "reduction_ratio"],
    );
    for p in points {
        table.push_row(vec![
            p.nodes.to_string(),
            format!("{:.2}", p.comparison.normal.avg_switch_time_secs()),
            format!("{:.2}", p.comparison.fast.avg_switch_time_secs()),
            format!("{:.3}", p.reduction_ratio()),
        ]);
    }
    table
}

/// Figure 8 / 12: communication overhead of both algorithms.
pub fn overhead_table(environment: Environment, points: &[SweepPoint]) -> Table {
    let fig = figure_number(environment, 8, 12);
    let mut table = Table::new(
        format!(
            "Figure {fig}: communication overhead ({} environments)",
            environment.name()
        ),
        &["nodes", "overhead_fast", "overhead_normal"],
    );
    for p in points {
        table.push_row(vec![
            p.nodes.to_string(),
            format!("{:.4}", p.comparison.fast.overhead.overhead),
            format!("{:.4}", p.comparison.normal.overhead.overhead),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Algorithm, ScenarioConfig};
    use crate::sweep::sweep_sizes;

    fn points() -> Vec<SweepPoint> {
        let base = ScenarioConfig::quick(60, Algorithm::Fast, Environment::Static);
        sweep_sizes(&[60, 100], &base)
    }

    #[test]
    fn tables_have_one_row_per_size_and_expected_titles() {
        let pts = points();
        let t6 = finishing_preparing_table(Environment::Static, &pts);
        let t7 = switch_time_table(Environment::Static, &pts);
        let t8 = overhead_table(Environment::Static, &pts);
        assert_eq!(t6.len(), 2);
        assert_eq!(t7.len(), 2);
        assert_eq!(t8.len(), 2);
        assert!(t6.title().contains("Figure 6"));
        assert!(t7.title().contains("Figure 7"));
        assert!(t8.title().contains("Figure 8"));

        let t10 = finishing_preparing_table(Environment::Dynamic, &pts);
        let t11 = switch_time_table(Environment::Dynamic, &pts);
        let t12 = overhead_table(Environment::Dynamic, &pts);
        assert!(t10.title().contains("Figure 10"));
        assert!(t11.title().contains("Figure 11"));
        assert!(t12.title().contains("Figure 12"));
    }

    #[test]
    fn figure6_shape_matches_the_paper() {
        // The paper's qualitative reading of Figure 6: the fast algorithm
        // finishes S1 no earlier than the normal algorithm but prepares S2 no
        // later — it "splits the difference".
        for p in points() {
            let normal = &p.comparison.normal.switch;
            let fast = &p.comparison.fast.switch;
            // Small tolerances: at these tiny sizes the backlog at switch
            // time is only a couple of hops' worth of segments.
            assert!(fast.avg_finish_old_secs + 0.5 >= normal.avg_finish_old_secs);
            assert!(fast.avg_prepare_new_secs <= normal.avg_prepare_new_secs + 0.5);
        }
    }

    #[test]
    fn figure8_overhead_is_about_a_percent_and_fast_is_not_worse() {
        for p in points() {
            let fast = p.comparison.fast.overhead.overhead;
            let normal = p.comparison.normal.overhead.overhead;
            assert!(fast > 0.002 && fast < 0.08, "fast overhead {fast}");
            assert!(normal > 0.002 && normal < 0.08, "normal overhead {normal}");
            assert!(fast <= normal * 1.05);
        }
    }
}
