//! Figures 5 and 9: the per-second ratio tracks.
//!
//! "We first track the undelivered ratio of S1 and delivered ratio of S2 of
//! our fast switch algorithm and the normal switch algorithm in a
//! (static|dynamic) network environment with 1000 nodes."

use crate::runner::ComparisonResult;
use crate::scenario::Environment;
use fss_metrics::Table;

/// Builds the Figure 5 (static) or Figure 9 (dynamic) series: one row per
/// second since the switch, four series (undelivered-S1 and delivered-S2 for
/// the normal and fast algorithms).
pub fn ratio_track_table(environment: Environment, comparison: &ComparisonResult) -> Table {
    let figure = match environment {
        Environment::Static => "Figure 5",
        Environment::Dynamic => "Figure 9",
    };
    let mut table = Table::new(
        format!(
            "{figure}: ratio tracks in a {} network with {} nodes",
            environment.name(),
            comparison.nodes()
        ),
        &[
            "secs",
            "undelivered_s1_normal",
            "undelivered_s1_fast",
            "delivered_s2_normal",
            "delivered_s2_fast",
        ],
    );

    let horizon = comparison
        .fast
        .ratio_track
        .rows()
        .last()
        .map(|r| r.secs)
        .unwrap_or(0.0)
        .max(
            comparison
                .normal
                .ratio_track
                .rows()
                .last()
                .map(|r| r.secs)
                .unwrap_or(0.0),
        )
        .ceil() as u64;

    for secs in 0..=horizon {
        let t = secs as f64;
        table.push_row(vec![
            format!("{secs}"),
            format!("{:.3}", comparison.normal.ratio_track.undelivered_s1_at(t)),
            format!("{:.3}", comparison.fast.ratio_track.undelivered_s1_at(t)),
            format!("{:.3}", comparison.normal.ratio_track.delivered_s2_at(t)),
            format!("{:.3}", comparison.fast.ratio_track.delivered_s2_at(t)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_comparison;
    use crate::scenario::{Algorithm, ScenarioConfig};

    #[test]
    fn track_table_has_one_row_per_second_and_monotone_series() {
        let base = ScenarioConfig::quick(70, Algorithm::Fast, Environment::Static);
        let cmp = run_comparison(&base);
        let table = ratio_track_table(Environment::Static, &cmp);
        assert!(table.title().contains("Figure 5"));
        assert!(table.len() > 3, "expected several seconds of track");

        let csv = table.to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        // Column 2 (undelivered S1, fast) never increases; column 4
        // (delivered S2, fast) never decreases; both end at their limits.
        for pair in rows.windows(2) {
            assert!(pair[1][2] <= pair[0][2] + 1e-9);
            assert!(pair[1][4] >= pair[0][4] - 1e-9);
        }
        let last = rows.last().unwrap();
        assert!(last[2] < 0.05, "undelivered S1 should drain to ~0");
        assert!(last[4] > 0.95, "delivered S2 should reach ~1");
    }

    #[test]
    fn dynamic_title_names_figure_9() {
        let base = ScenarioConfig::quick(70, Algorithm::Fast, Environment::Dynamic);
        let cmp = run_comparison(&base);
        let table = ratio_track_table(Environment::Dynamic, &cmp);
        assert!(table.title().contains("Figure 9"));
        assert!(table.title().contains("dynamic"));
    }
}
