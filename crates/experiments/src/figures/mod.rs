//! Regeneration of every evaluation figure of the paper.
//!
//! The paper's evaluation contains eight figures:
//!
//! | Figure | Content | Environment |
//! |--------|---------|-------------|
//! | 5  | ratio tracks (undelivered S1 / delivered S2), 1000 nodes | static |
//! | 6  | avg finishing time of S1 and preparing time of S2 vs size | static |
//! | 7  | avg switch time and reduction ratio vs size | static |
//! | 8  | communication overhead vs size | static |
//! | 9  | ratio tracks, 1000 nodes | dynamic |
//! | 10 | finishing/preparing times vs size | dynamic |
//! | 11 | switch time and reduction ratio vs size | dynamic |
//! | 12 | communication overhead vs size | dynamic |
//!
//! [`tracks`] produces Figures 5 and 9 (per-second series) and [`sweeps`]
//! produces Figures 6–8 and 10–12 (per-size tables) from a single size sweep
//! per environment.  [`generate`] runs everything for one environment,
//! [`generate_all`] for both.

pub mod sweeps;
pub mod tracks;

use crate::runner::run_comparison;
use crate::scenario::{Algorithm, Environment, ScenarioConfig};
use crate::sweep::{sweep_sizes, SweepPoint, PAPER_SIZES, QUICK_SIZES};
use fss_metrics::Table;

/// How big the regenerated figures should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureScale {
    /// Reduced sizes and warm-up: minutes of CPU, preserves every trend.
    Quick,
    /// The paper's sizes (100–8000 nodes, 1000-node ratio tracks).
    Paper,
}

impl FigureScale {
    /// The network sizes swept at this scale.
    pub fn sizes(&self) -> Vec<usize> {
        match self {
            FigureScale::Quick => QUICK_SIZES.to_vec(),
            FigureScale::Paper => PAPER_SIZES.to_vec(),
        }
    }

    /// The network size used for the ratio tracks (Figures 5 and 9).
    pub fn track_nodes(&self) -> usize {
        match self {
            FigureScale::Quick => 250,
            FigureScale::Paper => 1_000,
        }
    }

    /// The scenario template used at this scale.
    pub fn base_config(&self, environment: Environment) -> ScenarioConfig {
        match self {
            FigureScale::Quick => ScenarioConfig::quick(100, Algorithm::Fast, environment),
            FigureScale::Paper => ScenarioConfig::paper(100, Algorithm::Fast, environment),
        }
    }
}

/// All regenerated tables for one environment, in figure order.
#[derive(Debug, Clone)]
pub struct FigureSet {
    /// The environment the figures describe.
    pub environment: Environment,
    /// The per-size sweep behind the per-size figures.
    pub points: Vec<SweepPoint>,
    /// The tables, in the paper's figure order for this environment.
    pub tables: Vec<Table>,
}

/// Regenerates every figure of one environment (Figures 5–8 for static,
/// 9–12 for dynamic).
pub fn generate(environment: Environment, scale: FigureScale) -> FigureSet {
    generate_custom(environment, scale, &scale.sizes(), scale.track_nodes())
}

/// Like [`generate`], with explicit sweep sizes and ratio-track size
/// (used by the `figures --sizes` flag).
pub fn generate_custom(
    environment: Environment,
    scale: FigureScale,
    sizes: &[usize],
    track_nodes: usize,
) -> FigureSet {
    let base = scale.base_config(environment);

    // Ratio-track figure (5 / 9).
    let track_config = ScenarioConfig {
        nodes: track_nodes,
        ..base
    };
    let track_cmp = run_comparison(&track_config);
    let track_table = tracks::ratio_track_table(environment, &track_cmp);

    // Size-sweep figures (6–8 / 10–12).
    let points = sweep_sizes(sizes, &base);
    let finishing = sweeps::finishing_preparing_table(environment, &points);
    let switch = sweeps::switch_time_table(environment, &points);
    let overhead = sweeps::overhead_table(environment, &points);

    FigureSet {
        environment,
        points,
        tables: vec![track_table, finishing, switch, overhead],
    }
}

/// Regenerates every figure of the paper (both environments).
pub fn generate_all(scale: FigureScale) -> Vec<FigureSet> {
    vec![
        generate(Environment::Static, scale),
        generate(Environment::Dynamic, scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_expose_sensible_sizes() {
        assert_eq!(FigureScale::Paper.sizes(), PAPER_SIZES.to_vec());
        assert_eq!(FigureScale::Paper.track_nodes(), 1_000);
        assert!(FigureScale::Quick.sizes().len() >= 3);
        assert!(FigureScale::Quick.track_nodes() <= 500);
        let base = FigureScale::Quick.base_config(Environment::Dynamic);
        assert_eq!(base.environment, Environment::Dynamic);
    }

    #[test]
    fn generate_produces_four_tables_per_environment() {
        // Tiny ad-hoc scale to keep the test fast: reuse Quick but trim the
        // sweep by calling the pieces directly.
        let base = ScenarioConfig::quick(60, Algorithm::Fast, Environment::Static);
        let points = sweep_sizes(&[60, 90], &base);
        assert_eq!(points.len(), 2);
        let t6 = sweeps::finishing_preparing_table(Environment::Static, &points);
        let t7 = sweeps::switch_time_table(Environment::Static, &points);
        let t8 = sweeps::overhead_table(Environment::Static, &points);
        assert_eq!(t6.len(), 2);
        assert_eq!(t7.len(), 2);
        assert_eq!(t8.len(), 2);
        assert!(t6.title().contains("Figure 6"));
        assert!(t7.title().contains("Figure 7"));
        assert!(t8.title().contains("Figure 8"));
    }
}
