//! Segment requesting priorities (equations (6)–(9)).
//!
//! For a candidate segment `D_i`:
//!
//! * `R_i = max_j R_ij` — the best receiving rate over its suppliers (eq. 6),
//! * `t_i = (id_i − id_play)/p − 1/R_i`, `urgency_i = 1/t_i` — how close the
//!   segment is to its playback deadline (eq. 7),
//! * `rarity_i = Π_j (p_ij / B)` — the probability the segment is about to be
//!   replaced in **all** its suppliers' FIFO buffers (eq. 8, the paper's
//!   refinement of the traditional `1/n_i`),
//! * `priority_i = max(urgency_i, rarity_i)` (eq. 9).

use fss_gossip::{CandidateSegment, SchedulingContext};
use serde::{Deserialize, Serialize};

/// A very large urgency standing in for "the deadline has already passed"
/// (the paper's `1/t_i` with `t_i → 0⁺`).
pub const URGENCY_OVERDUE: f64 = 1.0e9;

/// The computed priority components of one candidate segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentPriority {
    /// Deadline pressure (eq. 7).
    pub urgency: f64,
    /// Replacement risk at the suppliers (eq. 8).
    pub rarity: f64,
    /// The requesting priority (eq. 9).
    pub priority: f64,
}

/// Urgency of a segment (eq. 7).
///
/// `deadline_secs` is `(id_i − id_play)/p`, the time until the segment is due
/// for playback, and `max_rate` is `R_i`.  Overdue or immediately-due
/// segments get [`URGENCY_OVERDUE`].
pub fn urgency(deadline_secs: f64, max_rate: f64) -> f64 {
    let transfer = if max_rate > 0.0 { 1.0 / max_rate } else { 0.0 };
    let t = deadline_secs - transfer;
    if t <= 0.0 {
        URGENCY_OVERDUE
    } else {
        1.0 / t
    }
}

/// Rarity of a segment (eq. 8): the product over suppliers of
/// `position / capacity`.
pub fn rarity(positions: &[(usize, usize)]) -> f64 {
    rarity_of(positions.iter().copied())
}

/// Iterator form of [`rarity`], used by the allocation-free hot path.
/// An empty iterator yields 1.0 (an unsupplied segment is maximally rare).
pub fn rarity_of(positions: impl Iterator<Item = (usize, usize)>) -> f64 {
    let mut product = 1.0;
    let mut any = false;
    for (position, capacity) in positions {
        any = true;
        product *= if capacity == 0 {
            1.0
        } else {
            (position as f64 / capacity as f64).clamp(0.0, 1.0)
        };
    }
    if any {
        product
    } else {
        1.0
    }
}

/// The traditional rarity the paper compares against (`1/n_i`); kept for the
/// ablation benchmarks.
pub fn traditional_rarity(supplier_count: usize) -> f64 {
    if supplier_count == 0 {
        1.0
    } else {
        1.0 / supplier_count as f64
    }
}

/// Full priority of a candidate segment within a scheduling context (eq. 9).
///
/// Runs once per candidate per node per period, so it must not allocate:
/// the rarity product streams through [`rarity_of`] instead of collecting
/// the positions.
pub fn priority(ctx: &SchedulingContext, candidate: &CandidateSegment) -> SegmentPriority {
    let deadline_secs = (candidate.id.value() as f64 - ctx.id_play.value() as f64) / ctx.play_rate;
    let urgency = urgency(deadline_secs, candidate.max_rate());
    let rarity = rarity_of(
        candidate
            .suppliers
            .iter()
            .map(|s| (s.buffer_position, s.buffer_capacity)),
    );
    SegmentPriority {
        urgency,
        rarity,
        priority: urgency.max(rarity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_gossip::{SegmentId, SessionView, SourceId, SupplierInfo};

    fn supplier(peer: u32, rate: f64, position: usize) -> SupplierInfo {
        SupplierInfo {
            peer,
            rate,
            buffer_position: position,
            buffer_capacity: 600,
        }
    }

    fn ctx(id_play: u64) -> SchedulingContext {
        SchedulingContext {
            tau_secs: 1.0,
            play_rate: 10.0,
            inbound_rate: 15.0,
            id_play: SegmentId(id_play),
            startup_q: 10,
            new_source_qs: 50,
            old_session: Some(SessionView {
                id: SourceId(0),
                first_segment: SegmentId(0),
                last_segment: Some(SegmentId(999)),
            }),
            new_session: None,
            q1: 0,
            q2: 0,
            candidates: vec![],
        }
    }

    #[test]
    fn urgency_grows_as_the_deadline_approaches() {
        let far = urgency(10.0, 15.0);
        let near = urgency(1.0, 15.0);
        assert!(near > far);
        assert!((far - 1.0 / (10.0 - 1.0 / 15.0)).abs() < 1e-12);
    }

    #[test]
    fn overdue_segments_get_the_sentinel_urgency() {
        assert_eq!(urgency(0.0, 15.0), URGENCY_OVERDUE);
        assert_eq!(urgency(-3.0, 15.0), URGENCY_OVERDUE);
        assert_eq!(urgency(0.05, 15.0), URGENCY_OVERDUE);
        // Without any rate information the transfer term vanishes.
        assert!((urgency(2.0, 0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rarity_is_the_product_of_position_fractions() {
        // One supplier, newest position: almost no replacement risk.
        assert!((rarity(&[(1, 600)]) - 1.0 / 600.0).abs() < 1e-12);
        // One supplier, oldest position: about to be replaced.
        assert!((rarity(&[(600, 600)]) - 1.0).abs() < 1e-12);
        // Several suppliers multiply the risk down.
        let r = rarity(&[(300, 600), (300, 600)]);
        assert!((r - 0.25).abs() < 1e-12);
        // Degenerate inputs.
        assert_eq!(rarity(&[]), 1.0);
        assert_eq!(rarity(&[(5, 0)]), 1.0);
        assert_eq!(traditional_rarity(4), 0.25);
        assert_eq!(traditional_rarity(0), 1.0);
    }

    #[test]
    fn rarity_favours_segments_held_only_in_old_buffer_slots() {
        let endangered = rarity(&[(580, 600)]);
        let safe = rarity(&[(580, 600), (10, 600)]);
        assert!(endangered > safe);
    }

    #[test]
    fn priority_is_the_max_of_both_components() {
        let context = ctx(100);
        // A segment due in 0.5 s: urgency dominates.
        let urgent = CandidateSegment {
            id: SegmentId(105),
            suppliers: vec![supplier(1, 15.0, 10)],
        };
        let p = priority(&context, &urgent);
        assert!(p.urgency > p.rarity);
        assert_eq!(p.priority, p.urgency);

        // A far-future segment that is about to be evicted everywhere:
        // rarity dominates.
        let rare = CandidateSegment {
            id: SegmentId(900),
            suppliers: vec![supplier(1, 15.0, 590), supplier(2, 20.0, 595)],
        };
        let p = priority(&context, &rare);
        assert!(p.rarity > p.urgency);
        assert_eq!(p.priority, p.rarity);
    }

    #[test]
    fn urgent_segments_outrank_far_safe_segments() {
        let context = ctx(100);
        let soon = CandidateSegment {
            id: SegmentId(102),
            suppliers: vec![supplier(1, 15.0, 10)],
        };
        let later = CandidateSegment {
            id: SegmentId(200),
            suppliers: vec![supplier(1, 15.0, 10)],
        };
        assert!(priority(&context, &soon).priority > priority(&context, &later).priority);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]
        /// Rarity is always within (0, 1] and never increases when another
        /// supplier is added.
        #[test]
        fn prop_rarity_bounds_and_monotonicity(
            positions in proptest::collection::vec((1usize..=600, 600usize..=600), 1..6),
            extra in 1usize..=600,
        ) {
            let r = rarity(&positions);
            proptest::prop_assert!(r > 0.0 && r <= 1.0);
            let mut more = positions.clone();
            more.push((extra, 600));
            proptest::prop_assert!(rarity(&more) <= r + 1e-15);
        }

        /// Urgency is positive and monotone: closer deadlines never have
        /// lower urgency.
        #[test]
        fn prop_urgency_monotone(d1 in -5.0f64..20.0, d2 in -5.0f64..20.0, rate in 1.0f64..40.0) {
            let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            let u_near = urgency(near, rate);
            let u_far = urgency(far, rate);
            proptest::prop_assert!(u_near > 0.0 && u_far > 0.0);
            proptest::prop_assert!(u_near >= u_far);
        }
    }
}
