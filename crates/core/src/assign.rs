//! Greedy earliest-supplier assignment (Algorithm 1, step 1).
//!
//! Candidates are processed in decreasing priority order.  For each segment
//! the scheduler picks, among the neighbours holding it, the supplier that
//! can deliver it earliest given the requests already queued at that supplier
//! this period (`t_trans = 1/R(S_ij)` plus the supplier's accumulated queuing
//! time `τ(S_ij)`); segments that no supplier can deliver within the
//! scheduling period `τ` are skipped.  The result is the pair of ordered sets
//! `O1` (old source) and `O2` (new source).
//!
//! Choosing a supplier for every segment so that the fewest segments miss
//! their deadlines is NP-hard (parallel machine scheduling), which is why the
//! paper — and this module — uses the greedy heuristic; `crate::optimal`
//! provides an exact solver for tiny instances to measure the gap.

use crate::priority::{priority, SegmentPriority};
use fss_gossip::hasher::FxHashMap;
use fss_gossip::{SchedulingContext, SegmentId, StreamClass};
use fss_overlay::PeerId;
use serde::{Deserialize, Serialize};

/// How candidates are ordered before the greedy pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignmentOrder {
    /// Strictly by decreasing priority, mixing both streams — the fast switch
    /// algorithm's order.
    ByPriority,
    /// All old-source segments (by priority) before any new-source segment —
    /// the normal switch algorithm's order.
    OldSourceFirst,
}

/// One segment together with the supplier the greedy pass chose for it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssignedSegment {
    /// The segment to request.
    pub id: SegmentId,
    /// The chosen supplier.
    pub supplier: PeerId,
    /// Which stream the segment belongs to.
    pub class: StreamClass,
    /// The priority that ordered it.
    pub priority: SegmentPriority,
    /// Expected time (seconds into the period) at which the supplier would
    /// finish sending it.
    pub expected_receive_secs: f64,
}

/// The ordered schedulable sets produced by the greedy pass.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AssignmentOutcome {
    /// `O1`: schedulable old-source segments, highest priority first.
    pub old: Vec<AssignedSegment>,
    /// `O2`: schedulable new-source segments, highest priority first.
    pub new: Vec<AssignedSegment>,
    /// Candidates that no supplier could deliver within the period.
    pub skipped: usize,
}

impl AssignmentOutcome {
    /// `O1 = |O1|`.
    pub fn available_old(&self) -> usize {
        self.old.len()
    }

    /// `O2 = |O2|`.
    pub fn available_new(&self) -> usize {
        self.new.len()
    }
}

/// Reusable working state of the greedy pass.
///
/// The period hot path runs `greedy_assign` for every node every period;
/// keeping the score buffer, the per-supplier queue map and the outcome
/// vectors alive across calls makes the pass allocation-free after warm-up.
#[derive(Debug, Default)]
pub struct AssignScratch {
    scored: Vec<(usize, SegmentPriority, StreamClass)>,
    /// Per-supplier queued transfer time; probed once per (candidate,
    /// supplier) pair per node per period, hence the fixed fast hasher.
    queue: FxHashMap<PeerId, f64>,
    /// The outcome of the most recent [`greedy_assign_into`] call.
    pub outcome: AssignmentOutcome,
}

/// Runs the greedy supplier assignment over a scheduling context.
pub fn greedy_assign(ctx: &SchedulingContext, order: AssignmentOrder) -> AssignmentOutcome {
    let mut scratch = AssignScratch::default();
    greedy_assign_into(ctx, order, &mut scratch);
    scratch.outcome
}

/// Allocation-free variant of [`greedy_assign`]: results land in
/// `scratch.outcome`, whose buffers are reused across calls.
pub fn greedy_assign_into(
    ctx: &SchedulingContext,
    order: AssignmentOrder,
    scratch: &mut AssignScratch,
) {
    // Score every candidate.
    scratch.scored.clear();
    scratch.scored.extend(
        ctx.candidates
            .iter()
            .enumerate()
            .map(|(idx, c)| (idx, priority(ctx, c), ctx.class_of(c.id))),
    );

    // Order the greedy pass.  Candidate ids are unique, so the key is a
    // total order and the (allocation-free) unstable sort is deterministic.
    scratch.scored.sort_unstable_by(|a, b| {
        let class_rank = |class: StreamClass| match class {
            StreamClass::Old => 0u8,
            StreamClass::New => 1u8,
        };
        let key_a = (
            class_rank(a.2),
            std::cmp::Reverse(ordered(a.1.priority)),
            ctx.candidates[a.0].id,
        );
        let key_b = (
            class_rank(b.2),
            std::cmp::Reverse(ordered(b.1.priority)),
            ctx.candidates[b.0].id,
        );
        match order {
            AssignmentOrder::OldSourceFirst => key_a.cmp(&key_b),
            AssignmentOrder::ByPriority => (key_a.1, key_a.2).cmp(&(key_b.1, key_b.2)),
        }
    });

    // Greedy earliest-finish supplier choice with per-supplier queuing.
    scratch.queue.clear();
    let queue = &mut scratch.queue;
    let outcome = &mut scratch.outcome;
    outcome.old.clear();
    outcome.new.clear();
    outcome.skipped = 0;
    for &(idx, priority, class) in &scratch.scored {
        let candidate = &ctx.candidates[idx];
        let mut best: Option<(f64, PeerId)> = None;
        for supplier in &candidate.suppliers {
            if supplier.rate <= 0.0 {
                continue;
            }
            let t_trans = 1.0 / supplier.rate;
            let finish = t_trans + queue.get(&supplier.peer).copied().unwrap_or(0.0);
            if finish < ctx.tau_secs && best.is_none_or(|(b, _)| finish < b) {
                best = Some((finish, supplier.peer));
            }
        }
        match best {
            Some((finish, peer)) => {
                queue.insert(peer, finish);
                let assigned = AssignedSegment {
                    id: candidate.id,
                    supplier: peer,
                    class,
                    priority,
                    expected_receive_secs: finish,
                };
                match class {
                    StreamClass::Old => outcome.old.push(assigned),
                    StreamClass::New => outcome.new.push(assigned),
                }
            }
            None => outcome.skipped += 1,
        }
    }
}

/// Total-orders an `f64` priority (NaN cannot occur: priorities are built
/// from finite inputs).
fn ordered(x: f64) -> ordered_float::NotNan {
    ordered_float::NotNan::new(x)
}

/// Minimal ordered-float helper, local to this crate to avoid an external
/// dependency.
mod ordered_float {
    /// An `f64` known not to be NaN, with a total order.
    #[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
    pub struct NotNan(f64);

    impl NotNan {
        /// Wraps a value, panicking on NaN.
        pub fn new(x: f64) -> Self {
            assert!(!x.is_nan(), "priority must not be NaN");
            NotNan(x)
        }
    }

    impl Eq for NotNan {}

    #[allow(clippy::derive_ord_xor_partial_ord)]
    impl Ord for NotNan {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.partial_cmp(other)
                .expect("NotNan values always compare")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_gossip::{CandidateSegment, SessionView, SourceId, SupplierInfo};
    use std::collections::HashMap;

    fn supplier(peer: u32, rate: f64, position: usize) -> SupplierInfo {
        SupplierInfo {
            peer,
            rate,
            buffer_position: position,
            buffer_capacity: 600,
        }
    }

    fn candidate(id: u64, suppliers: Vec<SupplierInfo>) -> CandidateSegment {
        CandidateSegment {
            id: SegmentId(id),
            suppliers,
        }
    }

    /// A switch context: old session ends at 199, new session starts at 200,
    /// playback is at 190.
    fn switch_ctx(candidates: Vec<CandidateSegment>) -> SchedulingContext {
        switch_ctx_at(190, candidates)
    }

    /// A switch context with an explicit playback position.
    fn switch_ctx_at(id_play: u64, candidates: Vec<CandidateSegment>) -> SchedulingContext {
        SchedulingContext {
            tau_secs: 1.0,
            play_rate: 10.0,
            inbound_rate: 15.0,
            id_play: SegmentId(id_play),
            startup_q: 10,
            new_source_qs: 50,
            old_session: Some(SessionView {
                id: SourceId(0),
                first_segment: SegmentId(0),
                last_segment: Some(SegmentId(199)),
            }),
            new_session: Some(SessionView {
                id: SourceId(1),
                first_segment: SegmentId(200),
                last_segment: None,
            }),
            q1: 10,
            q2: 50,
            candidates,
        }
    }

    #[test]
    fn splits_candidates_into_old_and_new_sets() {
        let ctx = switch_ctx(vec![
            candidate(191, vec![supplier(1, 15.0, 100)]),
            candidate(205, vec![supplier(2, 15.0, 5)]),
            candidate(192, vec![supplier(1, 15.0, 100)]),
        ]);
        let out = greedy_assign(&ctx, AssignmentOrder::ByPriority);
        assert_eq!(out.available_old(), 2);
        assert_eq!(out.available_new(), 1);
        assert_eq!(out.skipped, 0);
        assert!(out.old.iter().all(|a| a.class == StreamClass::Old));
        assert!(out.new.iter().all(|a| a.class == StreamClass::New));
    }

    #[test]
    fn prefers_the_supplier_that_finishes_earliest() {
        let ctx = switch_ctx(vec![candidate(
            191,
            vec![supplier(1, 5.0, 100), supplier(2, 20.0, 100)],
        )]);
        let out = greedy_assign(&ctx, AssignmentOrder::ByPriority);
        assert_eq!(out.old[0].supplier, 2);
        assert!((out.old[0].expected_receive_secs - 0.05).abs() < 1e-12);
    }

    #[test]
    fn queuing_time_spreads_load_across_suppliers() {
        // Two suppliers at the same rate: consecutive segments alternate
        // between them because the first pick accumulates queuing time.
        let suppliers = || vec![supplier(1, 10.0, 100), supplier(2, 10.0, 100)];
        let ctx = switch_ctx(vec![
            candidate(191, suppliers()),
            candidate(192, suppliers()),
            candidate(193, suppliers()),
            candidate(194, suppliers()),
        ]);
        let out = greedy_assign(&ctx, AssignmentOrder::ByPriority);
        let to_1 = out.old.iter().filter(|a| a.supplier == 1).count();
        let to_2 = out.old.iter().filter(|a| a.supplier == 2).count();
        assert_eq!(to_1, 2);
        assert_eq!(to_2, 2);
    }

    #[test]
    fn segments_that_cannot_arrive_within_the_period_are_skipped() {
        // One slow supplier: only ~1 segment fits in a period at 1.2 seg/s.
        let ctx = switch_ctx(vec![
            candidate(191, vec![supplier(1, 1.2, 100)]),
            candidate(192, vec![supplier(1, 1.2, 100)]),
            candidate(193, vec![supplier(1, 0.5, 100)]),
        ]);
        let out = greedy_assign(&ctx, AssignmentOrder::ByPriority);
        assert_eq!(out.available_old(), 1);
        assert_eq!(out.skipped, 2);
    }

    #[test]
    fn by_priority_order_interleaves_streams() {
        // Playback is far behind (id_play = 100): an old segment right at the
        // deadline is urgent, a new segment about to be evicted from its only
        // supplier is rare, and an old segment far from its deadline is
        // neither.  The interleaved order must rank the rare new segment
        // ahead of the mundane old one (this is exactly Figure 2's point).
        let urgent_old = candidate(101, vec![supplier(1, 15.0, 10)]);
        let rare_new = candidate(200, vec![supplier(2, 15.0, 590)]);
        let mundane_old = candidate(195, vec![supplier(3, 15.0, 10)]);
        let ctx = switch_ctx_at(100, vec![urgent_old, rare_new, mundane_old]);

        let fast = greedy_assign(&ctx, AssignmentOrder::ByPriority);
        assert_eq!(fast.old.len(), 2);
        assert_eq!(fast.new.len(), 1);
        // urgency(101) > rarity(200) > urgency(195).
        assert!(fast.old[0].priority.priority > fast.new[0].priority.priority);
        assert!(fast.new[0].priority.priority > fast.old[1].priority.priority);

        let normal = greedy_assign(&ctx, AssignmentOrder::OldSourceFirst);
        // Same membership, but the normal order always drains old first; the
        // ordering difference shows up in supplier queuing when they share
        // suppliers (not here) and in which segments survive truncation by
        // the allocation step.
        assert_eq!(normal.old.len(), 2);
        assert_eq!(normal.new.len(), 1);
    }

    #[test]
    fn old_first_order_assigns_old_segments_before_new_ones() {
        // A single supplier that can send two segments per period; under the
        // old-first order both old segments get it and the new one is
        // skipped, under priority order the rare new segment wins a slot.
        let ctx = switch_ctx_at(
            100,
            vec![
                candidate(185, vec![supplier(1, 2.5, 10)]),
                candidate(186, vec![supplier(1, 2.5, 10)]),
                candidate(200, vec![supplier(1, 2.5, 595)]),
            ],
        );
        let normal = greedy_assign(&ctx, AssignmentOrder::OldSourceFirst);
        assert_eq!(normal.available_old(), 2);
        assert_eq!(normal.available_new(), 0);
        assert_eq!(normal.skipped, 1);

        let fast = greedy_assign(&ctx, AssignmentOrder::ByPriority);
        assert_eq!(
            fast.available_new(),
            1,
            "rare new segment outranks an old one"
        );
        assert_eq!(fast.available_old(), 1);
        assert_eq!(fast.skipped, 1);
    }

    #[test]
    fn empty_context_yields_empty_outcome() {
        let ctx = switch_ctx(vec![]);
        let out = greedy_assign(&ctx, AssignmentOrder::ByPriority);
        assert_eq!(out.available_old(), 0);
        assert_eq!(out.available_new(), 0);
        assert_eq!(out.skipped, 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        /// The greedy pass never assigns more work to a supplier than fits in
        /// one period, never loses candidates (assigned + skipped = total),
        /// and keeps each output set sorted by non-increasing priority.
        #[test]
        fn prop_greedy_invariants(
            specs in proptest::collection::vec(
                (185u64..230, proptest::collection::vec((1u32..6, 2.0f64..30.0, 1usize..=600), 1..4)),
                1..40,
            )
        ) {
            let candidates: Vec<CandidateSegment> = specs
                .iter()
                .enumerate()
                .map(|(i, (id, sup))| {
                    // Keep at most one supplier entry per peer so the check
                    // below can recover the rate the assignment used.
                    let mut seen = std::collections::HashSet::new();
                    let suppliers: Vec<SupplierInfo> = sup
                        .iter()
                        .filter(|(p, _, _)| seen.insert(*p))
                        .map(|&(p, r, pos)| supplier(p, r, pos))
                        .collect();
                    candidate(*id + (i as u64 * 50), suppliers)
                })
                .collect();
            let total = candidates.len();
            let ctx = switch_ctx(candidates);
            for order in [AssignmentOrder::ByPriority, AssignmentOrder::OldSourceFirst] {
                let out = greedy_assign(&ctx, order);
                proptest::prop_assert_eq!(out.old.len() + out.new.len() + out.skipped, total);

                // Per-supplier load fits in a period.
                let mut load: HashMap<PeerId, f64> = HashMap::new();
                for a in out.old.iter().chain(out.new.iter()) {
                    let rate = ctx
                        .candidates
                        .iter()
                        .find(|c| c.id == a.id)
                        .unwrap()
                        .suppliers
                        .iter()
                        .find(|s| s.peer == a.supplier)
                        .unwrap()
                        .rate;
                    *load.entry(a.supplier).or_default() += 1.0 / rate;
                }
                for (_, l) in load {
                    proptest::prop_assert!(l < ctx.tau_secs + 1e-9);
                }

                // Output sets are priority-sorted.
                for set in [&out.old, &out.new] {
                    for pair in set.windows(2) {
                        proptest::prop_assert!(
                            pair[0].priority.priority >= pair[1].priority.priority - 1e-12
                        );
                    }
                }
            }
        }
    }
}
