//! Exact supplier assignment for tiny instances.
//!
//! The supplier-assignment problem of Algorithm 1 ("how to choose a proper
//! supplier for every data segment so that the number of segments missing
//! deadlines or being replaced can be the minimal") is NP-hard in general —
//! the paper points at parallel machine scheduling.  For instances with a
//! handful of segments an exhaustive search is feasible; this module provides
//! one so the test-suite and the ablation bench can measure how far the
//! greedy heuristic is from optimal.

use fss_gossip::hasher::FxHashMap;
use fss_gossip::{SchedulingContext, SegmentId};
use fss_overlay::PeerId;

/// The best assignment found by exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalAssignment {
    /// Chosen `(segment, supplier)` pairs.
    pub assigned: Vec<(SegmentId, PeerId)>,
    /// Number of segments that can be delivered within the period.
    pub delivered: usize,
    /// Total weighted priority of the delivered segments (tie-breaker used to
    /// prefer delivering high-priority segments).
    pub priority_mass: f64,
}

/// Upper bound on the number of candidates the exact solver accepts.
pub const MAX_EXACT_CANDIDATES: usize = 12;

/// Exhaustively finds the assignment that maximises the number of segments
/// deliverable within one period (ties broken by total priority mass).
///
/// # Panics
/// Panics if the context has more than [`MAX_EXACT_CANDIDATES`] candidates —
/// the search is exponential and meant for micro-instances only.
pub fn optimal_assign(ctx: &SchedulingContext) -> OptimalAssignment {
    assert!(
        ctx.candidates.len() <= MAX_EXACT_CANDIDATES,
        "exact solver limited to {MAX_EXACT_CANDIDATES} candidates, got {}",
        ctx.candidates.len()
    );
    let priorities: Vec<f64> = ctx
        .candidates
        .iter()
        .map(|c| crate::priority::priority(ctx, c).priority.min(1.0e6))
        .collect();

    let mut best = OptimalAssignment {
        assigned: Vec::new(),
        delivered: 0,
        priority_mass: 0.0,
    };
    let mut current: Vec<(SegmentId, PeerId)> = Vec::new();
    let mut load: FxHashMap<PeerId, f64> = FxHashMap::default();
    search(ctx, &priorities, 0, &mut current, &mut load, 0.0, &mut best);
    best
}

#[allow(clippy::too_many_arguments)]
fn search(
    ctx: &SchedulingContext,
    priorities: &[f64],
    index: usize,
    current: &mut Vec<(SegmentId, PeerId)>,
    load: &mut FxHashMap<PeerId, f64>,
    mass: f64,
    best: &mut OptimalAssignment,
) {
    if index == ctx.candidates.len() {
        let delivered = current.len();
        if delivered > best.delivered
            || (delivered == best.delivered && mass > best.priority_mass + 1e-12)
        {
            *best = OptimalAssignment {
                assigned: current.clone(),
                delivered,
                priority_mass: mass,
            };
        }
        return;
    }
    // Prune: even assigning every remaining candidate cannot beat the best.
    let remaining = ctx.candidates.len() - index;
    if current.len() + remaining < best.delivered {
        return;
    }

    let candidate = &ctx.candidates[index];
    // Option A: skip this segment.
    search(ctx, priorities, index + 1, current, load, mass, best);
    // Option B: assign it to each feasible supplier.
    for supplier in &candidate.suppliers {
        if supplier.rate <= 0.0 {
            continue;
        }
        let t_trans = 1.0 / supplier.rate;
        let used = load.get(&supplier.peer).copied().unwrap_or(0.0);
        if used + t_trans >= ctx.tau_secs {
            continue;
        }
        load.insert(supplier.peer, used + t_trans);
        current.push((candidate.id, supplier.peer));
        search(
            ctx,
            priorities,
            index + 1,
            current,
            load,
            mass + priorities[index],
            best,
        );
        current.pop();
        load.insert(supplier.peer, used);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{greedy_assign, AssignmentOrder};
    use fss_gossip::{CandidateSegment, SessionView, SourceId, SupplierInfo};

    fn supplier(peer: u32, rate: f64) -> SupplierInfo {
        SupplierInfo {
            peer,
            rate,
            buffer_position: 100,
            buffer_capacity: 600,
        }
    }

    fn ctx(candidates: Vec<CandidateSegment>) -> SchedulingContext {
        SchedulingContext {
            tau_secs: 1.0,
            play_rate: 10.0,
            inbound_rate: 15.0,
            id_play: SegmentId(100),
            startup_q: 10,
            new_source_qs: 50,
            old_session: Some(SessionView {
                id: SourceId(0),
                first_segment: SegmentId(0),
                last_segment: Some(SegmentId(199)),
            }),
            new_session: Some(SessionView {
                id: SourceId(1),
                first_segment: SegmentId(200),
                last_segment: None,
            }),
            q1: 10,
            q2: 50,
            candidates,
        }
    }

    fn candidate(id: u64, suppliers: Vec<SupplierInfo>) -> CandidateSegment {
        CandidateSegment {
            id: SegmentId(id),
            suppliers,
        }
    }

    #[test]
    fn assigns_everything_when_capacity_allows() {
        let c = ctx(vec![
            candidate(101, vec![supplier(1, 10.0)]),
            candidate(102, vec![supplier(2, 10.0)]),
            candidate(103, vec![supplier(1, 10.0), supplier(2, 10.0)]),
        ]);
        let best = optimal_assign(&c);
        assert_eq!(best.delivered, 3);
        assert_eq!(best.assigned.len(), 3);
    }

    #[test]
    fn respects_per_supplier_capacity() {
        // One supplier that fits only two segments per period.
        let c = ctx(vec![
            candidate(101, vec![supplier(1, 2.5)]),
            candidate(102, vec![supplier(1, 2.5)]),
            candidate(103, vec![supplier(1, 2.5)]),
        ]);
        let best = optimal_assign(&c);
        assert_eq!(best.delivered, 2);
    }

    #[test]
    fn beats_or_matches_a_greedy_trap() {
        // Greedy (by priority) sends the most urgent segment to the *fast*
        // supplier 2 even though only supplier 2 can serve the second
        // segment; the exact solver routes around that.
        let c = ctx(vec![
            candidate(101, vec![supplier(1, 1.5), supplier(2, 3.0)]),
            candidate(102, vec![supplier(2, 3.0)]),
            candidate(103, vec![supplier(2, 3.0)]),
        ]);
        let greedy = greedy_assign(&c, AssignmentOrder::ByPriority);
        let exact = optimal_assign(&c);
        assert!(exact.delivered >= greedy.old.len() + greedy.new.len());
        assert_eq!(exact.delivered, 3);
    }

    #[test]
    fn exact_never_worse_than_greedy_on_small_instances() {
        // A small family of deterministic instances.
        for seed in 0..20u64 {
            let mut candidates = Vec::new();
            let n = 2 + seed % 5;
            for k in 0..n {
                let mut suppliers = Vec::new();
                for s in 0..=(seed + k) % 3 {
                    let rate = 1.5 + ((seed * 7 + k * 3 + s) % 10) as f64;
                    suppliers.push(supplier(s as u32 + 1, rate));
                }
                candidates.push(candidate(101 + k * 7, suppliers));
            }
            let c = ctx(candidates);
            let greedy = greedy_assign(&c, AssignmentOrder::ByPriority);
            let exact = optimal_assign(&c);
            assert!(
                exact.delivered >= greedy.old.len() + greedy.new.len(),
                "seed {seed}: exact {} < greedy {}",
                exact.delivered,
                greedy.old.len() + greedy.new.len()
            );
        }
    }

    #[test]
    fn empty_instance() {
        let best = optimal_assign(&ctx(vec![]));
        assert_eq!(best.delivered, 0);
        assert!(best.assigned.is_empty());
        assert_eq!(best.priority_mass, 0.0);
    }

    #[test]
    #[should_panic(expected = "exact solver limited")]
    fn too_many_candidates_panics() {
        let candidates = (0..20u64)
            .map(|i| candidate(101 + i, vec![supplier(1, 10.0)]))
            .collect();
        let _ = optimal_assign(&ctx(candidates));
    }
}
