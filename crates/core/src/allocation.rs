//! The four-case rate allocation of Section 4.
//!
//! The ideal split `I1 = r1`, `I2 = r2` can only be realised when the
//! neighbourhood can actually deliver that much of each stream.  With `O1`
//! and `O2` the number of old/new-source segments the greedy assignment found
//! schedulable this period, the paper distinguishes four cases:
//!
//! | case | condition            | `I1`              | `I2`              |
//! |------|----------------------|-------------------|-------------------|
//! | 1    | `r1 ≤ O1`, `r2 ≤ O2` | `r1`              | `r2`              |
//! | 2    | `r1 ≤ O1`, `r2 > O2` | `min(O1, I − O2)` | `O2`              |
//! | 3    | `r1 > O1`, `r2 ≤ O2` | `O1`              | `min(O2, I − O1)` |
//! | 4    | `r1 > O1`, `r2 > O2` | `O1`              | `O2`              |

use crate::model::SwitchSplit;
use serde::{Deserialize, Serialize};

/// Which of the four cases applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationCase {
    /// Both streams can absorb their ideal share.
    Ideal,
    /// The new source is supply-limited.
    NewLimited,
    /// The old source is supply-limited.
    OldLimited,
    /// Both streams are supply-limited.
    BothLimited,
}

/// The whole-segment allocation for one scheduling period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateAllocation {
    /// Segments of the old source to retrieve this period (`I1`).
    pub old_segments: usize,
    /// Segments of the new source to retrieve this period (`I2`).
    pub new_segments: usize,
    /// Which case of Section 4 applied.
    pub case: AllocationCase,
}

impl RateAllocation {
    /// Total segments retrieved this period.
    pub fn total(&self) -> usize {
        self.old_segments + self.new_segments
    }
}

/// Applies the four-case rule and converts the result into whole segments.
///
/// * `split` — the ideal split `r1`/`r2` (segments per second),
/// * `available_old` / `available_new` — `O1` / `O2`, the schedulable
///   segments found by the greedy assignment,
/// * `inbound_budget` — `⌊I·τ⌋`, the node's whole-segment budget,
/// * `tau_secs` — the scheduling period.
///
/// Any budget left over by rounding is given to the new source first (that is
/// the quantity being minimised) and then to the old source, never exceeding
/// the available counts.
pub fn allocate_rates(
    split: SwitchSplit,
    available_old: usize,
    available_new: usize,
    inbound_budget: usize,
    tau_secs: f64,
) -> RateAllocation {
    assert!(tau_secs > 0.0, "scheduling period must be positive");
    let o1 = available_old as f64;
    let o2 = available_new as f64;
    let r1 = split.r1 * tau_secs;
    let r2 = split.r2 * tau_secs;
    let budget = inbound_budget as f64;

    let (i1, i2, case) = match (r1 <= o1, r2 <= o2) {
        (true, true) => (r1, r2, AllocationCase::Ideal),
        (true, false) => (
            o1.min(budget - o2.min(budget)),
            o2,
            AllocationCase::NewLimited,
        ),
        (false, true) => (
            o1,
            o2.min(budget - o1.min(budget)),
            AllocationCase::OldLimited,
        ),
        (false, false) => (o1, o2, AllocationCase::BothLimited),
    };

    // Integerise without exceeding the budget or the availability.
    let mut old_segments = (i1.max(0.0).floor() as usize).min(available_old);
    let mut new_segments = (i2.max(0.0).floor() as usize).min(available_new);
    if old_segments + new_segments > inbound_budget {
        // Trim the old source first: T2 is what the switch minimises.
        let excess = old_segments + new_segments - inbound_budget;
        let trim_old = excess.min(old_segments);
        old_segments -= trim_old;
        new_segments -= excess - trim_old;
    }
    // Spend any leftover budget, new source first.
    let leftover = inbound_budget.saturating_sub(old_segments + new_segments);
    let extra_new = leftover.min(available_new.saturating_sub(new_segments));
    new_segments += extra_new;
    let leftover = leftover - extra_new;
    let extra_old = leftover.min(available_old.saturating_sub(old_segments));
    old_segments += extra_old;

    RateAllocation {
        old_segments,
        new_segments,
        case,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(r1: f64, r2: f64) -> SwitchSplit {
        SwitchSplit { r1, r2 }
    }

    #[test]
    fn case1_ideal_split_realised() {
        let a = allocate_rates(split(9.0, 6.0), 20, 20, 15, 1.0);
        assert_eq!(a.case, AllocationCase::Ideal);
        assert_eq!(a.old_segments, 9);
        assert_eq!(a.new_segments, 6);
        assert_eq!(a.total(), 15);
    }

    #[test]
    fn case2_new_source_supply_limited() {
        // Ideal wants 6 new segments but only 3 are schedulable; the spare
        // inbound goes to the old source instead.
        let a = allocate_rates(split(9.0, 6.0), 20, 3, 15, 1.0);
        assert_eq!(a.case, AllocationCase::NewLimited);
        assert_eq!(a.new_segments, 3);
        assert_eq!(a.old_segments, 12);
        assert_eq!(a.total(), 15);
    }

    #[test]
    fn case3_old_source_supply_limited() {
        let a = allocate_rates(split(9.0, 6.0), 4, 30, 15, 1.0);
        assert_eq!(a.case, AllocationCase::OldLimited);
        assert_eq!(a.old_segments, 4);
        assert_eq!(a.new_segments, 11);
        assert_eq!(a.total(), 15);
    }

    #[test]
    fn case4_both_supply_limited() {
        let a = allocate_rates(split(9.0, 6.0), 4, 3, 15, 1.0);
        assert_eq!(a.case, AllocationCase::BothLimited);
        assert_eq!(a.old_segments, 4);
        assert_eq!(a.new_segments, 3);
        assert!(a.total() <= 15);
    }

    #[test]
    fn rounding_leftover_goes_to_the_new_source_first() {
        // r1 = 7.4, r2 = 7.6 floor to 7 + 7 = 14; the leftover unit goes to
        // the new source.
        let a = allocate_rates(split(7.4, 7.6), 20, 20, 15, 1.0);
        assert_eq!(a.old_segments, 7);
        assert_eq!(a.new_segments, 8);
    }

    #[test]
    fn never_exceeds_budget_or_availability() {
        let a = allocate_rates(split(30.0, 25.0), 8, 9, 10, 1.0);
        assert!(a.total() <= 10);
        assert!(a.old_segments <= 8);
        assert!(a.new_segments <= 9);
    }

    #[test]
    fn fractional_period_scales_the_split() {
        // With τ = 0.5 s the per-period quantities halve.
        let a = allocate_rates(split(10.0, 4.0), 20, 20, 7, 0.5);
        assert_eq!(a.old_segments, 5);
        assert_eq!(a.new_segments, 2);
    }

    #[test]
    fn zero_availability_allocates_nothing() {
        let a = allocate_rates(split(10.0, 5.0), 0, 0, 15, 1.0);
        assert_eq!(a.total(), 0);
        assert_eq!(a.case, AllocationCase::BothLimited);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_tau_panics() {
        let _ = allocate_rates(split(1.0, 1.0), 1, 1, 1, 0.0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]
        /// The allocation never exceeds the inbound budget or the per-stream
        /// availability, and it never wastes budget while availability
        /// remains.
        #[test]
        fn prop_allocation_respects_all_caps(
            r1 in 0.0f64..40.0,
            o1 in 0usize..60,
            o2 in 0usize..60,
            budget in 0usize..40,
            total in 1.0f64..40.0,
        ) {
            let r1 = r1.min(total);
            let s = split(r1, total - r1);
            let a = allocate_rates(s, o1, o2, budget, 1.0);
            proptest::prop_assert!(a.old_segments <= o1);
            proptest::prop_assert!(a.new_segments <= o2);
            proptest::prop_assert!(a.total() <= budget);
            // No waste: either the budget is exhausted or all availability is
            // consumed.
            let exhausted = a.total() == budget;
            let drained = a.old_segments == o1 && a.new_segments == o2;
            proptest::prop_assert!(exhausted || drained);
        }
    }
}
