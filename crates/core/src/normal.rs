//! The Normal Switch Algorithm (the paper's baseline).
//!
//! "For a node n when its neighbors can supply data segments of both S1 and
//! S2, node n would retrieve data segments of S1 in priority.  If n still has
//! available inbound rate after retrieving data segments of S1, it would
//! allocate the remaining inbound rate to retrieve data segments of S2."
//!
//! The baseline shares every mechanism with the fast algorithm — the same
//! priorities, the same greedy supplier assignment, the same budget — and
//! differs only in the allocation rule: the old source always gets absolute
//! priority, i.e. `I1 = min(O1, I)` and `I2 = min(O2, I − I1)`.

use crate::assign::{greedy_assign_into, AssignScratch, AssignmentOrder};
use fss_gossip::{SchedulerScratch, SchedulingContext, SegmentRequest, SegmentScheduler};

/// The baseline scheduler the paper compares against.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalSwitchScheduler;

impl NormalSwitchScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        NormalSwitchScheduler
    }
}

impl SegmentScheduler for NormalSwitchScheduler {
    fn name(&self) -> &'static str {
        "normal-switch"
    }

    fn schedule(&self, ctx: &SchedulingContext) -> Vec<SegmentRequest> {
        let mut scratch = SchedulerScratch::new();
        let mut out = Vec::new();
        self.schedule_into(ctx, &mut scratch, &mut out);
        out
    }

    fn schedule_into(
        &self,
        ctx: &SchedulingContext,
        scratch: &mut SchedulerScratch,
        out: &mut Vec<SegmentRequest>,
    ) {
        out.clear();
        let budget = ctx.inbound_budget();
        if budget == 0 || ctx.candidates.is_empty() {
            return;
        }
        let scratch: &mut AssignScratch = scratch.get_or_default();
        greedy_assign_into(ctx, AssignmentOrder::OldSourceFirst, scratch);
        let outcome = &scratch.outcome;
        let old_take = outcome.available_old().min(budget);
        let new_take = outcome.available_new().min(budget - old_take);
        out.extend(
            outcome
                .old
                .iter()
                .take(old_take)
                .chain(outcome.new.iter().take(new_take))
                .map(|a| SegmentRequest {
                    segment: a.id,
                    supplier: a.supplier,
                }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast::FastSwitchScheduler;
    use fss_gossip::{
        CandidateSegment, SegmentId, SessionView, SourceId, StreamClass, SupplierInfo,
    };

    fn supplier(peer: u32, rate: f64, position: usize) -> SupplierInfo {
        SupplierInfo {
            peer,
            rate,
            buffer_position: position,
            buffer_capacity: 600,
        }
    }

    fn switch_ctx(old_missing: u64, new_available: u64, inbound: f64) -> SchedulingContext {
        let mut candidates = Vec::new();
        for id in (200 - old_missing)..200u64 {
            candidates.push(CandidateSegment {
                id: SegmentId(id),
                suppliers: vec![supplier(1, 20.0, 300), supplier(2, 20.0, 250)],
            });
        }
        for id in 200..(200 + new_available) {
            candidates.push(CandidateSegment {
                id: SegmentId(id),
                suppliers: vec![supplier(3, 20.0, 30), supplier(4, 20.0, 25)],
            });
        }
        SchedulingContext {
            tau_secs: 1.0,
            play_rate: 10.0,
            inbound_rate: inbound,
            id_play: SegmentId(200 - old_missing),
            startup_q: 10,
            new_source_qs: 50,
            old_session: Some(SessionView {
                id: SourceId(0),
                first_segment: SegmentId(0),
                last_segment: Some(SegmentId(199)),
            }),
            new_session: Some(SessionView {
                id: SourceId(1),
                first_segment: SegmentId(200),
                last_segment: None,
            }),
            q1: old_missing as usize,
            q2: 50,
            candidates,
        }
    }

    #[test]
    fn old_source_gets_absolute_priority() {
        // Plenty of old segments missing: the whole budget goes to S1.
        let ctx = switch_ctx(60, 30, 15.0);
        let requests = NormalSwitchScheduler::new().schedule(&ctx);
        assert_eq!(requests.len(), ctx.inbound_budget());
        assert!(requests
            .iter()
            .all(|r| ctx.class_of(r.segment) == StreamClass::Old));
    }

    #[test]
    fn leftover_budget_goes_to_the_new_source() {
        // Only 4 old segments missing: 4 go to S1, the rest of the budget to
        // S2.
        let ctx = switch_ctx(4, 30, 15.0);
        let requests = NormalSwitchScheduler::new().schedule(&ctx);
        assert_eq!(requests.len(), ctx.inbound_budget());
        let old = requests
            .iter()
            .filter(|r| ctx.class_of(r.segment) == StreamClass::Old)
            .count();
        assert_eq!(old, 4);
        assert_eq!(requests.len() - old, ctx.inbound_budget() - 4);
        // Old requests come first in the emitted order.
        assert!(requests[..4]
            .iter()
            .all(|r| ctx.class_of(r.segment) == StreamClass::Old));
    }

    #[test]
    fn normal_prepares_the_new_source_slower_than_fast() {
        // With a large old backlog the fast algorithm reserves part of the
        // budget for the new source while the normal algorithm spends it all
        // on the old one — the per-period difference behind Figure 2.
        let ctx = switch_ctx(60, 30, 15.0);
        let fast_new = FastSwitchScheduler::new()
            .schedule(&ctx)
            .iter()
            .filter(|r| ctx.class_of(r.segment) == StreamClass::New)
            .count();
        let normal_new = NormalSwitchScheduler::new()
            .schedule(&ctx)
            .iter()
            .filter(|r| ctx.class_of(r.segment) == StreamClass::New)
            .count();
        assert!(fast_new > normal_new);
        assert_eq!(normal_new, 0);
    }

    #[test]
    fn respects_budget_and_empty_inputs() {
        let ctx = switch_ctx(2, 1, 2.0);
        let requests = NormalSwitchScheduler::new().schedule(&ctx);
        assert!(requests.len() <= 2);

        let mut empty = switch_ctx(5, 5, 15.0);
        empty.candidates.clear();
        assert!(NormalSwitchScheduler::new().schedule(&empty).is_empty());
        assert_eq!(NormalSwitchScheduler::new().name(), "normal-switch");
    }

    #[test]
    fn figure2_request_order_matches_the_paper() {
        // Figure 2: 10 available segments (5 of S1, 5 of S2), room for 7.
        // The normal algorithm requests the 5 old segments then 2 new ones;
        // the fast algorithm interleaves and picks more new segments.
        let ctx = {
            let mut ctx = switch_ctx(5, 5, 7.0);
            ctx.q2 = 5;
            ctx
        };
        let normal = NormalSwitchScheduler::new().schedule(&ctx);
        assert_eq!(normal.len(), 7);
        let normal_old = normal
            .iter()
            .filter(|r| ctx.class_of(r.segment) == StreamClass::Old)
            .count();
        assert_eq!(normal_old, 5);

        let fast = FastSwitchScheduler::new().schedule(&ctx);
        assert_eq!(fast.len(), 7);
        let fast_new = fast
            .iter()
            .filter(|r| ctx.class_of(r.segment) == StreamClass::New)
            .count();
        assert!(
            fast_new >= 2,
            "fast interleaves at least as many new segments"
        );
    }
}
