//! The paper's contribution: fast source switching for gossip-based P2P
//! streaming.
//!
//! This crate implements Sections 3 and 4 of the ICPP 2008 paper:
//!
//! * [`model`] — the source-switch optimization problem and its closed-form
//!   optimal solution `I1 = r1`, `I2 = I − r1` (equations (1)–(5)),
//! * [`mod@priority`] — per-segment urgency, rarity and requesting priority
//!   (equations (6)–(9)),
//! * [`assign`] — the greedy earliest-supplier assignment of Algorithm 1
//!   (step 1), which builds the ordered schedulable sets `O1` and `O2`,
//! * [`allocation`] — the four-case clamping of the ideal split to the
//!   available outbound capacities (Section 4),
//! * [`fast`] — the **Fast Switch Algorithm** (Algorithm 1) as a
//!   [`SegmentScheduler`](fss_gossip::SegmentScheduler),
//! * [`normal`] — the **Normal Switch Algorithm** baseline (old source
//!   strictly first),
//! * [`optimal`] — an exact (exponential) supplier-assignment solver for tiny
//!   instances, used to evaluate how close the greedy heuristic gets.

#![warn(missing_docs)]

pub mod allocation;
pub mod assign;
pub mod fast;
pub mod model;
pub mod normal;
pub mod optimal;
pub mod priority;

pub use allocation::{allocate_rates, RateAllocation};
pub use assign::{
    greedy_assign, greedy_assign_into, AssignScratch, AssignedSegment, AssignmentOrder,
    AssignmentOutcome,
};
pub use fast::FastSwitchScheduler;
pub use model::{optimal_split, SwitchModel, SwitchSplit};
pub use normal::NormalSwitchScheduler;
pub use optimal::{optimal_assign, OptimalAssignment};
pub use priority::{priority, rarity, rarity_of, traditional_rarity, urgency, SegmentPriority};
