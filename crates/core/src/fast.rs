//! The Fast Switch Algorithm (Algorithm 1).
//!
//! Each period the scheduler:
//!
//! 1. scores every candidate segment with `priority = max(urgency, rarity)`
//!    and greedily assigns each one to the supplier that can deliver it
//!    earliest within the period, yielding the ordered schedulable sets `O1`
//!    and `O2` ([`greedy_assign`](crate::assign::greedy_assign)),
//! 2. computes the ideal inbound split `r1`/`r2` from the closed-form model
//!    ([`SwitchModel::optimal_split`]),
//! 3. clamps it to the available supply with the four-case rule
//!    ([`allocate_rates`]), and
//! 4. requests the first `I1` segments of `O1` and the first `I2` segments of
//!    `O2`, interleaved by priority.
//!
//! Outside of a switch (only one stream has schedulable segments) it degrades
//! to a plain priority scheduler, which is what the underlying pull-based
//! protocol does anyway.

use crate::allocation::allocate_rates;
use crate::assign::{greedy_assign_into, AssignScratch, AssignedSegment, AssignmentOrder};
use crate::model::SwitchModel;
use fss_gossip::{SchedulerScratch, SchedulingContext, SegmentRequest, SegmentScheduler};

/// The paper's proposed scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastSwitchScheduler;

impl FastSwitchScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        FastSwitchScheduler
    }
}

/// Reusable per-worker state of the fast scheduler.
#[derive(Debug, Default)]
struct FastScratch {
    assign: AssignScratch,
    /// Merge order: indices into the old set, or into the new set with the
    /// high bit set.
    merged: Vec<u32>,
}

const NEW_FLAG: u32 = 1 << 31;

// fss-lint: hot-path
/// Merges the selected old/new segments into `out` ordered by decreasing
/// priority (ties broken by ascending id), emitting at most `limit` requests.
fn merge_by_priority_into(
    old: &[AssignedSegment],
    new: &[AssignedSegment],
    order: &mut Vec<u32>,
    out: &mut Vec<SegmentRequest>,
    limit: usize,
) {
    order.clear();
    // The index-with-flag encoding needs both sets to fit below the flag bit;
    // candidate sets are bounded by the buffer window (hundreds), so this
    // never fires outside adversarial synthetic inputs.
    assert!(
        old.len() < NEW_FLAG as usize && new.len() < NEW_FLAG as usize,
        "candidate set too large for the u31 index encoding"
    );
    order.extend((0..old.len()).map(|i| i as u32));
    order.extend((0..new.len()).map(|i| i as u32 | NEW_FLAG));
    let segment_of = |key: u32| -> &AssignedSegment {
        if key & NEW_FLAG != 0 {
            &new[(key & !NEW_FLAG) as usize]
        } else {
            &old[key as usize]
        }
    };
    // Ids are unique, so the key is total and the unstable sort
    // deterministic.
    order.sort_unstable_by(|&x, &y| {
        let a = segment_of(x);
        let b = segment_of(y);
        b.priority
            .priority
            .partial_cmp(&a.priority.priority)
            .expect("priorities are finite")
            .then(a.id.cmp(&b.id))
    });
    out.extend(order.iter().take(limit).map(|&key| {
        let a = segment_of(key);
        SegmentRequest {
            segment: a.id,
            supplier: a.supplier,
        }
    }));
}
// fss-lint: end

impl SegmentScheduler for FastSwitchScheduler {
    fn name(&self) -> &'static str {
        "fast-switch"
    }

    fn schedule(&self, ctx: &SchedulingContext) -> Vec<SegmentRequest> {
        let mut scratch = SchedulerScratch::new();
        let mut out = Vec::new();
        self.schedule_into(ctx, &mut scratch, &mut out);
        out
    }

    fn schedule_into(
        &self,
        ctx: &SchedulingContext,
        scratch: &mut SchedulerScratch,
        out: &mut Vec<SegmentRequest>,
    ) {
        out.clear();
        let budget = ctx.inbound_budget();
        if budget == 0 || ctx.candidates.is_empty() {
            return;
        }
        let scratch: &mut FastScratch = scratch.get_or_default();
        greedy_assign_into(ctx, AssignmentOrder::ByPriority, &mut scratch.assign);
        let outcome = &scratch.assign.outcome;

        // Only one stream has anything schedulable: plain priority retrieval.
        if outcome.old.is_empty() || outcome.new.is_empty() || !ctx.switch_in_progress() {
            merge_by_priority_into(&outcome.old, &outcome.new, &mut scratch.merged, out, budget);
            return;
        }

        // Ideal split, clamped by the four-case rule.
        let model = SwitchModel::new(
            ctx.q1.max(1) as f64,
            ctx.q2 as f64,
            ctx.startup_q as f64,
            ctx.play_rate,
            ctx.inbound_rate,
        );
        let split = model.optimal_split();
        let allocation = allocate_rates(
            split,
            outcome.available_old(),
            outcome.available_new(),
            budget,
            ctx.tau_secs,
        );

        merge_by_priority_into(
            &outcome.old[..allocation.old_segments],
            &outcome.new[..allocation.new_segments],
            &mut scratch.merged,
            out,
            usize::MAX,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_gossip::{
        CandidateSegment, SegmentId, SessionView, SourceId, StreamClass, SupplierInfo,
    };

    fn supplier(peer: u32, rate: f64, position: usize) -> SupplierInfo {
        SupplierInfo {
            peer,
            rate,
            buffer_position: position,
            buffer_capacity: 600,
        }
    }

    /// A node 60 segments behind the old stream's end, with the whole old
    /// tail and the first new segments available from ample suppliers.
    fn switch_ctx(inbound: f64) -> SchedulingContext {
        let mut candidates = Vec::new();
        // Old source: missing 140..=199 (60 segments).
        for id in 140..200u64 {
            candidates.push(CandidateSegment {
                id: SegmentId(id),
                suppliers: vec![supplier(1, 20.0, 300), supplier(2, 20.0, 200)],
            });
        }
        // New source: missing 200..=229 (30 segments available so far).
        for id in 200..230u64 {
            candidates.push(CandidateSegment {
                id: SegmentId(id),
                suppliers: vec![supplier(3, 20.0, 30), supplier(4, 20.0, 20)],
            });
        }
        SchedulingContext {
            tau_secs: 1.0,
            play_rate: 10.0,
            inbound_rate: inbound,
            id_play: SegmentId(140),
            startup_q: 10,
            new_source_qs: 50,
            old_session: Some(SessionView {
                id: SourceId(0),
                first_segment: SegmentId(0),
                last_segment: Some(SegmentId(199)),
            }),
            new_session: Some(SessionView {
                id: SourceId(1),
                first_segment: SegmentId(200),
                last_segment: None,
            }),
            q1: 60,
            q2: 50,
            candidates,
        }
    }

    #[test]
    fn interleaves_old_and_new_requests() {
        let ctx = switch_ctx(15.0);
        let requests = FastSwitchScheduler::new().schedule(&ctx);
        assert!(!requests.is_empty());
        assert!(requests.len() <= ctx.inbound_budget());
        let old = requests
            .iter()
            .filter(|r| ctx.class_of(r.segment) == StreamClass::Old)
            .count();
        let new = requests.len() - old;
        assert!(old > 0, "some inbound goes to the old source");
        assert!(new > 0, "some inbound goes to the new source");

        // The split follows the model: with Q1 = 60, Q2 = 50, Q = 10, p = 10,
        // I = 15 the ideal r1 ≈ 9.27, so roughly 9 old and 6 new.
        let split = SwitchModel::new(60.0, 50.0, 10.0, 10.0, 15.0).optimal_split();
        assert!(
            (old as f64 - split.r1).abs() <= 1.0,
            "old={old} r1={}",
            split.r1
        );
        assert!(
            (new as f64 - split.r2).abs() <= 1.0,
            "new={new} r2={}",
            split.r2
        );
    }

    #[test]
    fn never_exceeds_the_inbound_budget() {
        for inbound in [1.0, 5.0, 10.0, 15.0, 33.0] {
            let ctx = switch_ctx(inbound);
            let requests = FastSwitchScheduler::new().schedule(&ctx);
            assert!(requests.len() <= ctx.inbound_budget());
        }
    }

    #[test]
    fn no_candidates_or_budget_yields_no_requests() {
        let mut ctx = switch_ctx(15.0);
        ctx.candidates.clear();
        assert!(FastSwitchScheduler::new().schedule(&ctx).is_empty());

        let mut ctx = switch_ctx(15.0);
        ctx.inbound_rate = 0.5;
        assert!(FastSwitchScheduler::new().schedule(&ctx).is_empty());
    }

    #[test]
    fn single_stream_contexts_fall_back_to_priority_order() {
        let mut ctx = switch_ctx(15.0);
        // Remove every new-source candidate: no switch decision to make.
        ctx.candidates.retain(|c| c.id < SegmentId(200));
        ctx.new_session = None;
        ctx.q2 = 0;
        let requests = FastSwitchScheduler::new().schedule(&ctx);
        assert_eq!(requests.len(), ctx.inbound_budget());
        // Most urgent (earliest) segments are requested first.
        assert_eq!(requests[0].segment, SegmentId(140));
    }

    #[test]
    fn requests_are_unique_and_reference_candidate_suppliers() {
        let ctx = switch_ctx(15.0);
        let requests = FastSwitchScheduler::new().schedule(&ctx);
        let mut ids: Vec<_> = requests.iter().map(|r| r.segment).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), requests.len());
        for r in &requests {
            let c = ctx.candidates.iter().find(|c| c.id == r.segment).unwrap();
            assert!(c.suppliers.iter().any(|s| s.peer == r.supplier));
        }
    }

    #[test]
    fn scheduler_name_is_stable() {
        assert_eq!(FastSwitchScheduler::new().name(), "fast-switch");
    }
}
