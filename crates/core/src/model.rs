//! The source-switch optimization model (Section 3).
//!
//! During a switch the node splits its constant inbound rate `I` into `I1`
//! (old source) and `I2` (new source).  With
//!
//! * `T1 = Q1 / I1` — time to receive the remaining old-source segments,
//! * `T1' = T1 + Q/p` — time to *finish playing* the old source,
//! * `T2 = Q2 / I2` — time to receive the first `Qs` new-source segments,
//!
//! minimizing `T2` subject to `T2 ≥ T1'` and `I = I1 + I2` has the closed
//! form solution `I1 = r1` of equation (4):
//!
//! ```text
//! r1 = ( I − p(Q1+Q2)/Q + sqrt( (p(Q1+Q2)/Q − I)² + 4·p·I·Q1/Q ) ) / 2
//! ```

use serde::{Deserialize, Serialize};

/// Inputs of the switch-process optimization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchModel {
    /// `Q1`: undelivered segments of the old source.
    pub q1: f64,
    /// `Q2`: undelivered segments of the new source needed for its startup.
    pub q2: f64,
    /// `Q`: consecutive segments needed before a stream plays.
    pub q: f64,
    /// `p`: playback rate in segments per second.
    pub play_rate: f64,
    /// `I`: total inbound rate in segments per second.
    pub inbound: f64,
}

/// The optimal rate split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchSplit {
    /// Rate allocated to the old source (`I1 = r1`).
    pub r1: f64,
    /// Rate allocated to the new source (`I2 = I − r1`).
    pub r2: f64,
}

impl SwitchModel {
    /// Creates a model, validating that the fixed parameters are positive and
    /// the workload values non-negative.
    ///
    /// # Panics
    /// Panics on non-finite or non-positive `q`, `play_rate` or `inbound`, or
    /// negative `q1`/`q2`.
    pub fn new(q1: f64, q2: f64, q: f64, play_rate: f64, inbound: f64) -> Self {
        assert!(q1.is_finite() && q1 >= 0.0, "Q1 must be non-negative");
        assert!(q2.is_finite() && q2 >= 0.0, "Q2 must be non-negative");
        assert!(q.is_finite() && q > 0.0, "Q must be positive");
        assert!(
            play_rate.is_finite() && play_rate > 0.0,
            "play rate must be positive"
        );
        assert!(
            inbound.is_finite() && inbound > 0.0,
            "inbound rate must be positive"
        );
        SwitchModel {
            q1,
            q2,
            q,
            play_rate,
            inbound,
        }
    }

    /// Expected time to finish the old source's playback given `I1`
    /// (`T1' = Q1/I1 + Q/p`).
    pub fn finish_old_secs(&self, i1: f64) -> f64 {
        if self.q1 == 0.0 {
            self.q / self.play_rate
        } else if i1 <= 0.0 {
            f64::INFINITY
        } else {
            self.q1 / i1 + self.q / self.play_rate
        }
    }

    /// Expected time to gather the new source's startup segments given `I2`
    /// (`T2 = Q2/I2`).
    pub fn prepare_new_secs(&self, i2: f64) -> f64 {
        if self.q2 == 0.0 {
            0.0
        } else if i2 <= 0.0 {
            f64::INFINITY
        } else {
            self.q2 / i2
        }
    }

    /// The startup delay of the new source for a given split: the new source
    /// can start only when it is both prepared and the old stream has been
    /// played out, i.e. `max(T2, T1')`.
    pub fn startup_delay_secs(&self, i1: f64, i2: f64) -> f64 {
        self.prepare_new_secs(i2).max(self.finish_old_secs(i1))
    }

    /// The optimal split of equation (4): `I1 = r1`, `I2 = I − r1`.
    pub fn optimal_split(&self) -> SwitchSplit {
        let i = self.inbound;
        let p = self.play_rate;
        let q = self.q;
        // The closed form also covers the degenerate workloads: with Q1 = 0
        // it reduces to r1 = max(0, I − p·Q2/Q) and with Q2 = 0 to r1 = I.
        let a = p * (self.q1 + self.q2) / q;
        let discriminant = (a - i).powi(2) + 4.0 * p * i * self.q1 / q;
        let r1 = ((i - a) + discriminant.sqrt()) / 2.0;
        let r1 = r1.clamp(0.0, i);
        SwitchSplit { r1, r2: i - r1 }
    }

    /// Numerically minimizes the startup delay over `I1 ∈ (0, I)` by grid
    /// search.  Used by tests and the model bench to confirm the closed form.
    pub fn numeric_best_split(&self, steps: usize) -> SwitchSplit {
        let mut best = SwitchSplit {
            r1: 0.0,
            r2: self.inbound,
        };
        let mut best_delay = self.startup_delay_secs(best.r1, best.r2);
        for k in 1..steps {
            let r1 = self.inbound * k as f64 / steps as f64;
            let r2 = self.inbound - r1;
            let delay = self.startup_delay_secs(r1, r2);
            if delay < best_delay {
                best_delay = delay;
                best = SwitchSplit { r1, r2 };
            }
        }
        best
    }
}

/// Convenience wrapper around [`SwitchModel::optimal_split`].
pub fn optimal_split(q1: f64, q2: f64, q: f64, play_rate: f64, inbound: f64) -> SwitchSplit {
    SwitchModel::new(q1, q2, q, play_rate, inbound).optimal_split()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model(q1: f64, q2: f64) -> SwitchModel {
        // Paper defaults: Q = 10, p = 10, average I = 15.
        SwitchModel::new(q1, q2, 10.0, 10.0, 15.0)
    }

    #[test]
    fn split_sums_to_inbound_and_is_positive() {
        let m = paper_model(100.0, 50.0);
        let s = m.optimal_split();
        assert!((s.r1 + s.r2 - 15.0).abs() < 1e-9);
        assert!(s.r1 > 0.0 && s.r2 > 0.0);
    }

    #[test]
    fn constraint_is_tight_at_the_optimum() {
        // At the optimum the inequality T2 >= T1' holds with equality.
        for (q1, q2) in [(100.0, 50.0), (30.0, 50.0), (200.0, 50.0), (10.0, 80.0)] {
            let m = paper_model(q1, q2);
            let s = m.optimal_split();
            let t1p = m.finish_old_secs(s.r1);
            let t2 = m.prepare_new_secs(s.r2);
            assert!(
                (t1p - t2).abs() < 1e-6,
                "T1'={t1p} T2={t2} not tight for Q1={q1} Q2={q2}"
            );
        }
    }

    #[test]
    fn closed_form_matches_numeric_minimum() {
        for (q1, q2) in [(100.0, 50.0), (40.0, 50.0), (150.0, 20.0), (5.0, 50.0)] {
            let m = paper_model(q1, q2);
            let closed = m.optimal_split();
            let numeric = m.numeric_best_split(20_000);
            let d_closed = m.startup_delay_secs(closed.r1, closed.r2);
            let d_numeric = m.startup_delay_secs(numeric.r1, numeric.r2);
            assert!(
                d_closed <= d_numeric + 1e-3,
                "closed-form delay {d_closed} worse than numeric {d_numeric}"
            );
        }
    }

    #[test]
    fn degenerate_workloads() {
        // Nothing left of the old source and a large S2 backlog: everything
        // goes to the new one.
        let s = paper_model(0.0, 50.0).optimal_split();
        assert_eq!(s.r1, 0.0);
        assert_eq!(s.r2, 15.0);
        // Nothing left of the old source and a small S2 backlog: S2 only gets
        // what it needs to be ready by the time the old playback drains.
        let s = paper_model(0.0, 5.0).optimal_split();
        assert!((s.r2 - 5.0).abs() < 1e-9);
        // New source already prepared: everything goes to the old one.
        let s = paper_model(120.0, 0.0).optimal_split();
        assert_eq!(s.r1, 15.0);
        assert_eq!(s.r2, 0.0);
    }

    #[test]
    fn more_old_backlog_means_more_rate_for_the_old_source() {
        let small = paper_model(20.0, 50.0).optimal_split();
        let large = paper_model(200.0, 50.0).optimal_split();
        assert!(large.r1 > small.r1);
    }

    #[test]
    fn finish_and_prepare_times() {
        let m = paper_model(100.0, 50.0);
        assert!((m.finish_old_secs(10.0) - 11.0).abs() < 1e-12);
        assert!((m.prepare_new_secs(5.0) - 10.0).abs() < 1e-12);
        assert_eq!(m.finish_old_secs(0.0), f64::INFINITY);
        assert_eq!(m.prepare_new_secs(0.0), f64::INFINITY);
        assert!((m.startup_delay_secs(10.0, 5.0) - 11.0).abs() < 1e-12);
        // With no old backlog, finishing the old source only costs Q/p.
        assert!((paper_model(0.0, 50.0).finish_old_secs(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn helper_function_matches_method() {
        let a = optimal_split(100.0, 50.0, 10.0, 10.0, 15.0);
        let b = paper_model(100.0, 50.0).optimal_split();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "inbound rate must be positive")]
    fn zero_inbound_panics() {
        let _ = SwitchModel::new(10.0, 10.0, 10.0, 10.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "Q1 must be non-negative")]
    fn negative_q1_panics() {
        let _ = SwitchModel::new(-1.0, 10.0, 10.0, 10.0, 15.0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]
        /// The closed-form r1 always satisfies the feasibility inequality (1)
        /// (within numerical tolerance), lies inside [0, I], and achieves a
        /// startup delay no worse than any sampled alternative split.
        #[test]
        fn prop_closed_form_is_feasible_and_optimal(
            q1 in 0.0f64..500.0,
            q2 in 0.0f64..200.0,
            q in 1.0f64..50.0,
            p in 1.0f64..40.0,
            i in 1.0f64..60.0,
            alt in 0.01f64..0.99,
        ) {
            let m = SwitchModel::new(q1, q2, q, p, i);
            let s = m.optimal_split();
            proptest::prop_assert!(s.r1 >= -1e-9 && s.r1 <= i + 1e-9);
            proptest::prop_assert!((s.r1 + s.r2 - i).abs() < 1e-9);

            // Feasibility: T2 >= T1' (allowing tolerance for the boundary).
            // With Q2 = 0 there is nothing to prepare and the constraint is
            // vacuous.
            let t1p = m.finish_old_secs(s.r1);
            let t2 = m.prepare_new_secs(s.r2);
            if q2 > 0.0 && t1p.is_finite() && t2.is_finite() {
                proptest::prop_assert!(t2 + 1e-6 >= t1p - 1e-6);
            }

            // No alternative split does better.
            let alt_r1 = alt * i;
            let best = m.startup_delay_secs(s.r1, s.r2);
            let alternative = m.startup_delay_secs(alt_r1, i - alt_r1);
            proptest::prop_assert!(best <= alternative + 1e-6);
        }
    }
}
